#include "src/lsq/samie_lsq.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/common/bit_scan.h"

namespace samie::lsq {

SamieLsq::SamieLsq(const SamieConfig& cfg, energy::SamieLsqLedger* ledger)
    : cfg_(cfg),
      ledger_(ledger),
      line_shift_(log2_floor(cfg.line_bytes)),
      where_(cfg.seq_window_hint) {
  if (cfg_.banks == 0) {
    throw std::invalid_argument("SamieConfig: banks must be >= 1");
  }
  if (cfg_.entries_per_bank == 0 || cfg_.entries_per_bank > 64 ||
      cfg_.slots_per_entry == 0 || cfg_.slots_per_entry > 64) {
    throw std::invalid_argument(
        "SamieConfig: entries_per_bank and slots_per_entry must be in "
        "[1, 64] (occupancy bitmask width)");
  }
  if (is_pow2(cfg_.banks)) bank_mask_plus1_ = cfg_.banks;
  full_entry_mask_ = cfg_.entries_per_bank == 64
                         ? ~0ULL
                         : (1ULL << cfg_.entries_per_bank) - 1;
  full_slot_mask_ =
      cfg_.slots_per_entry == 64 ? ~0ULL : (1ULL << cfg_.slots_per_entry) - 1;

  banks_.resize(cfg_.banks);
  for (auto& bank : banks_) {
    bank.entries.resize(cfg_.entries_per_bank);
    for (auto& e : bank.entries) e.slots.resize(cfg_.slots_per_entry);
  }
  shared_.resize(cfg_.unbounded_shared ? 0 : cfg_.shared_entries);
  for (auto& e : shared_) e.slots.resize(cfg_.slots_per_entry);
  shared_valid_.assign(std::max<std::size_t>(1, (shared_.size() + 63) / 64), 0);

  buffer_.reserve(std::max<std::uint32_t>(1, cfg_.addr_buffer_slots));
}

template <typename Self, typename Fn>
void SamieLsq::for_each_valid_shared_impl(Self& self, Fn&& fn) {
  for (std::size_t wi = 0; wi < self.shared_valid_.size(); ++wi) {
    for (std::uint64_t m = self.shared_valid_[wi]; m != 0; m &= m - 1) {
      const auto i = static_cast<std::uint32_t>(wi * 64 + ctz(m));
      fn(i, self.shared_[i]);
    }
  }
}

template <typename Fn>
void SamieLsq::for_each_same_line(Addr line, Fn&& fn) {
  Bank& bank = banks_[bank_of(line)];
  for (std::uint64_t m = bank.valid_mask; m != 0; m &= m - 1) {
    Entry& e = bank.entries[ctz(m)];
    if (e.line == line) fn(e);
  }
  for_each_valid_shared([&](std::uint32_t, Entry& e) {
    if (e.line == line) fn(e);
  });
}

void SamieLsq::fill_slot(const MemOpDesc& op, const Loc& loc, bool new_entry) {
  Entry& e = entry_at(loc);
  const bool distrib = loc.where == Where::kDistrib;
  if (new_entry) {
    assert(e.slot_mask == 0 && e.used == 0);
    e.valid = true;
    e.line = op.addr >> line_shift_;
    e.present = false;
    e.translation = false;
    e.used = 0;
    e.slot_mask = 0;
    if (distrib) {
      Bank& bank = banks_[loc.bank];
      bank.valid_mask |= 1ULL << loc.entry;
      ++d_entries_used_;
      if (bank.valid_mask == full_entry_mask_) ++banks_full_;
    } else {
      shared_valid_[loc.entry / 64] |= 1ULL << (loc.entry % 64);
      ++s_entries_used_;
    }
    if (ledger_ != nullptr) {
      distrib ? ledger_->on_distrib_addr_write() : ledger_->on_shared_addr_write();
    }
  }

  ++occ_epoch_;
  Slot& s = e.slots[loc.slot];
  s.seq = op.seq;
  s.offset = static_cast<std::uint8_t>(op.addr & (cfg_.line_bytes - 1));
  s.size = op.size;
  s.fwd_store = kNoInst;
  s.flags = SlotFlags::make(/*valid=*/true, op.is_load, op.data_ready);
  e.slot_mask |= 1ULL << loc.slot;
  ++e.used;
  if (e.used == cfg_.slots_per_entry) {
    distrib ? ++d_entries_full_ : ++s_entries_full_;
  }
  if (distrib) {
    ++d_slots_used_;
    ++banks_[loc.bank].slots_used;
  } else {
    ++s_slots_used_;
  }
  where_.insert(op.seq, loc);

  if (ledger_ != nullptr) {
    distrib ? ledger_->on_distrib_age_write() : ledger_->on_shared_age_write();
    if (!op.is_load && op.data_ready) {
      distrib ? ledger_->on_distrib_datum_rw() : ledger_->on_shared_datum_rw();
    }
  }
}

void SamieLsq::disambiguate(const MemOpDesc& op, Loc self_loc) {
  const Addr line = op.addr >> line_shift_;
  const std::uint8_t offset =
      static_cast<std::uint8_t>(op.addr & (cfg_.line_bytes - 1));
  Slot& self = entry_at(self_loc).slots[self_loc.slot];

  for_each_same_line(line, [&](Entry& e) {
    for (std::uint64_t m = e.slot_mask; m != 0; m &= m - 1) {
      Slot& s = e.slots[ctz(m)];
      if (s.seq == op.seq) continue;
      if (op.is_load) {
        if (s.flags.is_load() || s.seq >= op.seq) continue;
        if (ranges_overlap(offset, op.size, s.offset, s.size) &&
            (self.fwd_store == kNoInst || s.seq > self.fwd_store)) {
          self.fwd_store = s.seq;
          self.flags.set_fwd_full(range_covers(static_cast<Addr>(offset),
                                               op.size, s.offset, s.size));
        }
      } else {
        if (!s.flags.is_load() || s.seq <= op.seq) continue;
        if (ranges_overlap(s.offset, s.size, offset, op.size) &&
            (s.fwd_store == kNoInst || s.fwd_store < op.seq)) {
          s.fwd_store = op.seq;
          s.flags.set_fwd_full(range_covers(static_cast<Addr>(s.offset), s.size,
                                            offset, op.size));
        }
      }
    }
  });
}

bool SamieLsq::try_place(const MemOpDesc& op, bool /*from_buffer*/) {
  const Addr line = op.addr >> line_shift_;
  const std::uint32_t bank_idx = bank_of(line);
  Bank& bank = banks_[bank_idx];

  // The address is broadcast to its bank and to the SharedLSQ; both are
  // searched in parallel (paper §3.2). Charge the comparisons now — they
  // happen regardless of whether a slot is found. Age identifiers of every
  // in-use entry reached by the search are compared as well (§4.2). One
  // fused event record carries the whole search: the bank's valid-entry
  // count and per-bank slots_used supply the distrib counts, the O(1)
  // occupancy counters the shared ones — no entry iteration.
  if (ledger_ != nullptr) {
    ledger_->on_placement_search(
        static_cast<std::uint64_t>(std::popcount(bank.valid_mask)),
        bank.slots_used, s_entries_used_, s_slots_used_);
  }

  // Placement preference (paper §3.2): same-line entry with a free slot in
  // the bank; else a free bank entry; else same-line with a free slot in
  // the SharedLSQ; else a free shared entry. All scans are bitmask walks.
  Loc loc;
  bool new_entry = false;
  bool found = false;

  for (std::uint64_t m = bank.valid_mask; m != 0 && !found; m &= m - 1) {
    const std::uint32_t i = ctz(m);
    Entry& e = bank.entries[i];
    if (e.line == line && e.slot_mask != full_slot_mask_) {
      loc = Loc{Where::kDistrib, bank_idx, i, ctz(~e.slot_mask)};
      found = true;
    }
  }
  if (!found) {
    const std::uint64_t free_entries = ~bank.valid_mask & full_entry_mask_;
    if (free_entries != 0) {
      loc = Loc{Where::kDistrib, bank_idx, ctz(free_entries), 0};
      new_entry = true;
      found = true;
    }
  }
  if (!found) {
    const std::size_t n = shared_.size();
    for (std::size_t wi = 0; wi * 64 < n && !found; ++wi) {
      for (std::uint64_t m = shared_valid_[wi]; m != 0 && !found; m &= m - 1) {
        const auto i = static_cast<std::uint32_t>(wi * 64 + ctz(m));
        Entry& e = shared_[i];
        if (e.line == line && e.slot_mask != full_slot_mask_) {
          loc = Loc{Where::kShared, 0, i, ctz(~e.slot_mask)};
          found = true;
        }
      }
    }
  }
  if (!found) {
    const std::size_t n = shared_.size();
    for (std::size_t wi = 0; wi * 64 < n && !found; ++wi) {
      const std::uint64_t covered =
          n - wi * 64 >= 64 ? ~0ULL : (1ULL << (n - wi * 64)) - 1;
      const std::uint64_t free_entries = ~shared_valid_[wi] & covered;
      if (free_entries != 0) {
        loc = Loc{Where::kShared, 0,
                  static_cast<std::uint32_t>(wi * 64 + ctz(free_entries)), 0};
        new_entry = true;
        found = true;
      }
    }
  }
  if (!found && cfg_.unbounded_shared) {
    shared_.emplace_back();
    shared_.back().slots.resize(cfg_.slots_per_entry);
    if (shared_.size() > shared_valid_.size() * 64) shared_valid_.push_back(0);
    loc = Loc{Where::kShared, 0, static_cast<std::uint32_t>(shared_.size() - 1), 0};
    new_entry = true;
    found = true;
  }
  if (!found) return false;

  fill_slot(op, loc, new_entry);
  disambiguate(op, loc);
  return true;
}

Placement SamieLsq::on_address_ready(const MemOpDesc& op) {
  if (try_place(op, /*from_buffer=*/false)) {
    return Placement{Placement::Status::kPlaced};
  }
  if (buffer_.size() >= cfg_.addr_buffer_slots) {
    return Placement{Placement::Status::kRejected};
  }
  ++buffered_;
  ++occ_epoch_;
  buffer_.push_back(op);
  if (ledger_ != nullptr) ledger_->on_addrbuf_write();
  return Placement{Placement::Status::kBuffered};
}

void SamieLsq::drain(std::vector<InstSeq>& newly_placed) {
  // Buffered instructions retry oldest-first with priority over newly
  // computed addresses (paper §3.2). The AddrBuffer is a FIFO (§3.3), so
  // the head blocks the queue until it places; each retry re-reads the
  // FIFO head and re-runs the parallel search — this is what makes ammp
  // the one program whose SAMIE LSQ energy approaches the conventional
  // LSQ's (Figure 7).
  for (std::uint32_t n = 0; n < cfg_.drain_width && !buffer_.empty(); ++n) {
    const MemOpDesc& op = buffer_.front();
    if (ledger_ != nullptr) ledger_->on_addrbuf_read();
    if (!try_place(op, /*from_buffer=*/true)) break;
    newly_placed.push_back(op.seq);
    ++occ_epoch_;
    buffer_.pop_front();
  }
}

LoadPlan SamieLsq::plan_load(InstSeq seq) const {
  const Loc* loc = where_find(seq);
  assert(loc != nullptr);
  const Slot& s = entry_at(*loc).slots[loc->slot];
  assert(s.flags.valid() && s.flags.is_load());
  LoadPlan p;
  if (s.fwd_store == kNoInst) return p;
  const Loc* sloc = where_find(s.fwd_store);
  assert(sloc != nullptr);
  const Slot& st = entry_at(*sloc).slots[sloc->slot];
  p.store = s.fwd_store;
  if (!s.flags.fwd_full()) {
    p.kind = LoadPlan::Kind::kWaitCommit;
  } else if (st.flags.data_ready()) {
    p.kind = LoadPlan::Kind::kForwardReady;
  } else {
    p.kind = LoadPlan::Kind::kForwardWait;
  }
  return p;
}

CacheHints SamieLsq::cache_hints(InstSeq seq) const {
  const Loc* loc = where_find(seq);
  assert(loc != nullptr);
  const Entry& e = entry_at(*loc);
  CacheHints h;
  h.way_known = e.present;
  h.set = e.set;
  h.way = e.way;
  h.translation_known = e.translation;
  if (ledger_ != nullptr && (e.present || e.translation)) {
    // Reading the cached line id / translation out of the entry.
    if (loc->where == Where::kDistrib) {
      if (e.present) ledger_->on_distrib_line_id_rw();
      if (e.translation) ledger_->on_distrib_translation_rw();
    } else {
      if (e.present) ledger_->on_shared_line_id_rw();
      if (e.translation) ledger_->on_shared_translation_rw();
    }
  }
  return h;
}

void SamieLsq::on_cache_access_complete(InstSeq seq, std::uint32_t set,
                                        std::uint32_t way) {
  const Loc* loc = where_find(seq);
  assert(loc != nullptr);
  Entry& e = entry_at(*loc);
  const bool distrib = loc->where == Where::kDistrib;
  if (!e.present) {
    e.present = true;
    e.set = set;
    e.way = way;
    if (ledger_ != nullptr) {
      distrib ? ledger_->on_distrib_line_id_rw() : ledger_->on_shared_line_id_rw();
    }
  }
  if (!e.translation) {
    e.translation = true;
    if (ledger_ != nullptr) {
      distrib ? ledger_->on_distrib_translation_rw()
              : ledger_->on_shared_translation_rw();
    }
  }
}

void SamieLsq::on_load_complete(InstSeq seq) {
  const Loc* loc = where_find(seq);
  assert(loc != nullptr);
  const bool distrib = loc->where == Where::kDistrib;
  const Slot& s = entry_at(*loc).slots[loc->slot];
  if (ledger_ != nullptr) {
    // The loaded datum is written into the slot; a forwarded load also
    // read the source store's datum.
    distrib ? ledger_->on_distrib_datum_rw() : ledger_->on_shared_datum_rw();
    if (s.fwd_store != kNoInst && s.flags.fwd_full()) {
      if (const Loc* sloc = where_find(s.fwd_store); sloc != nullptr) {
        sloc->where == Where::kDistrib ? ledger_->on_distrib_datum_rw()
                                       : ledger_->on_shared_datum_rw();
      }
    }
  }
}

void SamieLsq::on_store_data_ready(InstSeq seq) {
  const Loc* loc = where_find(seq);
  assert(loc != nullptr);
  Slot& s = entry_at(*loc).slots[loc->slot];
  assert(s.flags.valid() && !s.flags.is_load());
  s.flags.set_data_ready(true);
  if (ledger_ != nullptr) {
    loc->where == Where::kDistrib ? ledger_->on_distrib_datum_rw()
                                  : ledger_->on_shared_datum_rw();
  }
}

void SamieLsq::clear_forward_refs(Entry& e, InstSeq store) {
  for (std::uint64_t m = e.slot_mask; m != 0; m &= m - 1) {
    Slot& s = e.slots[ctz(m)];
    if (s.fwd_store == store) {
      s.fwd_store = kNoInst;
      s.flags.set_fwd_full(false);
    }
  }
}

void SamieLsq::free_slot(const Loc& loc, InstSeq seq) {
  ++occ_epoch_;
  Entry& e = entry_at(loc);
  const bool distrib = loc.where == Where::kDistrib;
  assert(e.slots[loc.slot].flags.valid() && e.slots[loc.slot].seq == seq);
  if (e.used == cfg_.slots_per_entry) {
    distrib ? --d_entries_full_ : --s_entries_full_;
  }
  e.slots[loc.slot].flags.set_valid(false);
  e.slots[loc.slot].seq = kNoInst;
  e.slot_mask &= ~(1ULL << loc.slot);
  --e.used;
  if (distrib) {
    --d_slots_used_;
    --banks_[loc.bank].slots_used;
  } else {
    --s_slots_used_;
  }
  if (e.used == 0) {
    e.valid = false;
    if (e.present && cfg_.clear_stale_present_bits &&
        clear_cache_bit_ != nullptr) {
      // Only clear the cache-side bit if no sibling entry (same line,
      // slots-full overflow) still relies on the cached location.
      bool sibling_present = false;
      for_each_same_line(e.line, [&](Entry& other) {
        if (&other != &e && other.present) sibling_present = true;
      });
      if (!sibling_present) clear_cache_bit_->clear_present_bit(e.set, e.way);
    }
    e.present = false;
    e.translation = false;
    if (distrib) {
      Bank& bank = banks_[loc.bank];
      if (bank.valid_mask == full_entry_mask_) --banks_full_;
      bank.valid_mask &= ~(1ULL << loc.entry);
      --d_entries_used_;
    } else {
      shared_valid_[loc.entry / 64] &= ~(1ULL << (loc.entry % 64));
      --s_entries_used_;
    }
  }
  where_.erase(seq);
}

void SamieLsq::on_commit(InstSeq seq) {
  const Loc* at = where_find(seq);
  assert(at != nullptr);
  const Loc loc = *at;
  Entry& e = entry_at(loc);
  const Slot& s = e.slots[loc.slot];
  if (!s.flags.is_load()) {
    // The store's datum leaves for the cache; loads that planned to
    // forward from it fall back to the (now up-to-date) cache.
    if (ledger_ != nullptr) {
      loc.where == Where::kDistrib ? ledger_->on_distrib_datum_rw()
                                   : ledger_->on_shared_datum_rw();
    }
    const Addr line = e.line;
    for_each_same_line(line, [&](Entry& other) { clear_forward_refs(other, seq); });
  }
  free_slot(loc, seq);
}

void SamieLsq::squash_from(InstSeq seq) {
  // One walk collects the squashed slots; forwarding refs are same-line
  // by construction (disambiguate only links within for_each_same_line),
  // so stale refs to squashed *stores* can only survive in entries
  // holding those stores' lines — clear exactly those lines instead of
  // re-walking every bank and the shared structure.
  squash_scratch_.clear();
  squash_lines_scratch_.clear();
  auto collect = [&](Where where, std::uint32_t bank, std::uint32_t ei,
                     Entry& e) {
    for (std::uint64_t m = e.slot_mask; m != 0; m &= m - 1) {
      const std::uint32_t si = ctz(m);
      if (e.slots[si].seq >= seq) {
        squash_scratch_.emplace_back(Loc{where, bank, ei, si}, e.slots[si].seq);
        if (!e.slots[si].flags.is_load()) {
          squash_lines_scratch_.push_back(e.line);
        }
      }
    }
  };
  for (std::uint32_t b = 0; b < cfg_.banks; ++b) {
    for (std::uint64_t m = banks_[b].valid_mask; m != 0; m &= m - 1) {
      const std::uint32_t ei = ctz(m);
      collect(Where::kDistrib, b, ei, banks_[b].entries[ei]);
    }
  }
  for_each_valid_shared(
      [&](std::uint32_t i, Entry& e) { collect(Where::kShared, 0, i, e); });
  for (const auto& [loc, s] : squash_scratch_) free_slot(loc, s);

  auto clear_refs = [&](Entry& e) {
    for (std::uint64_t m = e.slot_mask; m != 0; m &= m - 1) {
      Slot& s = e.slots[ctz(m)];
      if (s.fwd_store != kNoInst && s.fwd_store >= seq) {
        s.fwd_store = kNoInst;
        s.flags.set_fwd_full(false);
      }
    }
  };
  std::sort(squash_lines_scratch_.begin(), squash_lines_scratch_.end());
  squash_lines_scratch_.erase(
      std::unique(squash_lines_scratch_.begin(), squash_lines_scratch_.end()),
      squash_lines_scratch_.end());
  for (const Addr line : squash_lines_scratch_) {
    for_each_same_line(line, clear_refs);
  }

  // Compact the AddrBuffer ring in place, preserving FIFO order.
  ++occ_epoch_;
  buffer_.erase_if([seq](const MemOpDesc& op) { return op.seq >= seq; });
}

void SamieLsq::on_cache_line_replaced(std::uint32_t set) {
  // Reset the presentBit of every entry that could hold a line mapping to
  // `set` (paper §3.4: "resetting the presentBit flag of all entries that
  // can be potentially affected"). Bank index and set index are both
  // low-order line-address bits, so the affected banks are:
  //   banks >= sets: banks b with b % sets == set;
  //   banks <  sets: the single bank set % banks.
  auto reset_entry = [&](Entry& e) {
    if (e.present) {
      e.present = false;
      ++present_resets_;
    }
  };
  auto reset_bank = [&](Bank& bank) {
    for (std::uint64_t m = bank.valid_mask; m != 0; m &= m - 1) {
      reset_entry(bank.entries[ctz(m)]);
    }
  };
  if (cfg_.banks >= cfg_.l1d_sets) {
    for (std::uint32_t b = set; b < cfg_.banks; b += cfg_.l1d_sets) {
      reset_bank(banks_[b]);
    }
  } else {
    reset_bank(banks_[set % cfg_.banks]);
  }
  for_each_valid_shared([&](std::uint32_t, Entry& e) { reset_entry(e); });
}

OccupancySample SamieLsq::occupancy() const {
  OccupancySample s;
  s.distrib_entries_used = d_entries_used_;
  s.distrib_slots_used = d_slots_used_;
  s.distrib_banks_full = banks_full_;
  s.distrib_entries_full = d_entries_full_;
  s.shared_entries_used = s_entries_used_;
  s.shared_slots_used = s_slots_used_;
  s.shared_entries_full = s_entries_full_;
  s.buffer_used = static_cast<std::uint32_t>(buffer_.size());
  return s;
}

OccupancySample SamieLsq::recount_occupancy() const {
  // From-scratch recount off the per-slot valid flags — deliberately NOT
  // off the bitmasks, so it cross-checks mask maintenance too.
  OccupancySample s;
  auto count_entry = [&](const Entry& e, bool distrib) {
    std::uint32_t used = 0;
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < e.slots.size(); ++i) {
      if (e.slots[i].flags.valid()) {
        ++used;
        mask |= 1ULL << i;
      }
    }
    assert(mask == e.slot_mask);
    assert(used == e.used);
    if (used == 0) return;
    if (distrib) {
      ++s.distrib_entries_used;
      s.distrib_slots_used += used;
      if (used == cfg_.slots_per_entry) ++s.distrib_entries_full;
    } else {
      ++s.shared_entries_used;
      s.shared_slots_used += used;
      if (used == cfg_.slots_per_entry) ++s.shared_entries_full;
    }
  };
  for (const Bank& bank : banks_) {
    std::uint32_t in_use = 0;
    for (const Entry& e : bank.entries) {
      if (e.valid) ++in_use;
      count_entry(e, /*distrib=*/true);
    }
    if (in_use == cfg_.entries_per_bank) ++s.distrib_banks_full;
  }
  for (const Entry& e : shared_) count_entry(e, /*distrib=*/false);
  s.buffer_used = static_cast<std::uint32_t>(buffer_.size());
  return s;
}

}  // namespace samie::lsq
