#include "src/lsq/conventional_lsq.h"

#include <cassert>

namespace samie::lsq {

ConventionalLsq::ConventionalLsq(const ConventionalLsqConfig& cfg,
                                 energy::ConvLsqLedger* ledger)
    : cfg_(cfg), ledger_(ledger) {
  entries_.reserve(cfg_.entries);
}

ConventionalLsq::Entry* ConventionalLsq::find(InstSeq seq) {
  // Entries are age-ordered; binary search by seq over the ring indices.
  std::size_t lo = 0, hi = entries_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entries_[mid].seq < seq) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return (lo < entries_.size() && entries_[lo].seq == seq) ? &entries_[lo]
                                                           : nullptr;
}

const ConventionalLsq::Entry* ConventionalLsq::find(InstSeq seq) const {
  return const_cast<ConventionalLsq*>(this)->find(seq);
}

bool ConventionalLsq::can_dispatch(bool /*is_load*/) const {
  return entries_.size() < cfg_.entries;
}

void ConventionalLsq::on_dispatch(InstSeq seq, bool is_load) {
  assert(entries_.size() < cfg_.entries);
  assert(entries_.empty() || entries_.back().seq < seq);
  Entry e;
  e.seq = seq;
  e.is_load = is_load;
  entries_.push_back(e);
}

Placement ConventionalLsq::on_address_ready(const MemOpDesc& op) {
  Entry* self = find(op.seq);
  assert(self != nullptr && !self->addr_known);
  self->addr = op.addr;
  self->size = op.size;
  self->addr_known = true;
  self->data_ready = op.data_ready;
  if (ledger_ != nullptr) ledger_->on_addr_write();

  std::uint64_t compared = 0;
  if (op.is_load) {
    // Compare against older stores with known addresses; remember the
    // youngest overlapping one.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.seq >= op.seq) break;
      if (e.is_load || !e.addr_known) continue;
      ++compared;
      if (ranges_overlap(op.addr, op.size, e.addr, e.size)) {
        self->fwd_store = e.seq;
        self->fwd_full = range_covers(op.addr, op.size, e.addr, e.size);
      }
    }
  } else {
    // Compare against younger loads with known addresses and update their
    // forwarding information.
    if (op.data_ready && ledger_ != nullptr) ledger_->on_datum_write();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry& e = entries_[i];
      if (e.seq <= op.seq) continue;
      if (!e.is_load || !e.addr_known) continue;
      ++compared;
      if (ranges_overlap(e.addr, e.size, op.addr, op.size) &&
          (e.fwd_store == kNoInst || e.fwd_store < op.seq)) {
        e.fwd_store = op.seq;
        e.fwd_full = range_covers(e.addr, e.size, op.addr, op.size);
      }
    }
  }
  if (ledger_ != nullptr) ledger_->on_addr_search(compared);
  return Placement{Placement::Status::kPlaced};
}

void ConventionalLsq::drain(std::vector<InstSeq>& /*newly_placed*/) {}

bool ConventionalLsq::is_placed(InstSeq seq) const {
  const Entry* e = find(seq);
  return e != nullptr && e->addr_known;
}

LoadPlan ConventionalLsq::plan_load(InstSeq seq) const {
  const Entry* e = find(seq);
  assert(e != nullptr && e->is_load && e->addr_known);
  LoadPlan p;
  // A reference to an already-committed store means memory is up to date:
  // fall back to the cache (lazy form of the eager clearing on commit).
  if (e->fwd_store == kNoInst || !store_live(e->fwd_store)) {
    p.kind = LoadPlan::Kind::kCacheAccess;
    return p;
  }
  const Entry* s = find(e->fwd_store);
  assert(s != nullptr);
  p.store = e->fwd_store;
  if (!e->fwd_full) {
    p.kind = LoadPlan::Kind::kWaitCommit;
  } else if (s->data_ready) {
    p.kind = LoadPlan::Kind::kForwardReady;
  } else {
    p.kind = LoadPlan::Kind::kForwardWait;
  }
  return p;
}

CacheHints ConventionalLsq::cache_hints(InstSeq /*seq*/) const {
  return CacheHints{};  // the conventional LSQ caches nothing
}

void ConventionalLsq::on_cache_access_complete(InstSeq /*seq*/,
                                               std::uint32_t /*set*/,
                                               std::uint32_t /*way*/) {}

void ConventionalLsq::on_load_complete(InstSeq seq) {
  assert(find(seq) != nullptr);
  if (ledger_ != nullptr) ledger_->on_datum_write();
  // A forwarded load also read the store's datum (only if the store is
  // still queued — after its commit the datum came from the cache).
  const Entry* e = find(seq);
  if (e->fwd_store != kNoInst && store_live(e->fwd_store) && e->fwd_full &&
      ledger_ != nullptr) {
    ledger_->on_datum_read();
  }
}

void ConventionalLsq::on_store_data_ready(InstSeq seq) {
  Entry* e = find(seq);
  assert(e != nullptr && !e->is_load);
  e->data_ready = true;
  if (ledger_ != nullptr) ledger_->on_datum_write();
}

void ConventionalLsq::on_commit(InstSeq seq) {
  assert(!entries_.empty() && entries_.front().seq == seq);
  const Entry& e = entries_.front();
  if (!e.is_load && ledger_ != nullptr) {
    ledger_->on_datum_read();  // the store's datum leaves for the cache
    ledger_->on_addr_read();
  }
  // Loads that planned to forward from this store fall back to the cache;
  // their references go stale and store_live() filters them at read time,
  // so commit is O(1) instead of an O(n) ref sweep + front erase.
  entries_.pop_front();
  (void)seq;
}

void ConventionalLsq::squash_from(InstSeq seq) {
  while (!entries_.empty() && entries_.back().seq >= seq) entries_.pop_back();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.fwd_store != kNoInst && e.fwd_store >= seq) {
      e.fwd_store = kNoInst;
      e.fwd_full = false;
    }
  }
}

OccupancySample ConventionalLsq::occupancy() const {
  OccupancySample s;
  s.entries_used = static_cast<std::uint32_t>(entries_.size());
  return s;
}

std::unique_ptr<ConventionalLsq> make_unbounded_lsq(std::uint32_t window) {
  ConventionalLsqConfig cfg;
  cfg.entries = window;
  cfg.unbounded = true;
  return std::make_unique<ConventionalLsq>(cfg, nullptr);
}

}  // namespace samie::lsq
