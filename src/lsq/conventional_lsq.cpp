#include "src/lsq/conventional_lsq.h"

#include <cassert>

namespace samie::lsq {

ConventionalLsq::ConventionalLsq(const ConventionalLsqConfig& cfg,
                                 energy::ConvLsqLedger* ledger)
    : cfg_(cfg), ledger_(ledger) {
  entries_.reserve(cfg_.entries);
  load_seqs_.reserve(cfg_.entries);
  store_seqs_.reserve(cfg_.entries);
}

ConventionalLsq::Entry* ConventionalLsq::find(InstSeq seq) {
  // O(1): the seq ring table names the entry's absolute allocation index;
  // subtracting the committed-front index yields its ring position.
  const std::uint64_t* abs = where_.find(seq);
  if (abs == nullptr) return nullptr;
  Entry& e = entries_[static_cast<std::size_t>(*abs - front_abs_)];
  assert(e.seq == seq);
  return &e;
}

const ConventionalLsq::Entry* ConventionalLsq::find(InstSeq seq) const {
  return const_cast<ConventionalLsq*>(this)->find(seq);
}

bool ConventionalLsq::can_dispatch(bool /*is_load*/) const {
  return entries_.size() < cfg_.entries;
}

void ConventionalLsq::on_dispatch(InstSeq seq, bool is_load) {
  assert(entries_.size() < cfg_.entries);
  assert(entries_.empty() || entries_.back().seq < seq);
  Entry e;
  e.seq = seq;
  e.flags.set_is_load(is_load);
  where_.insert(seq, next_abs_++);
  ++occ_epoch_;
  (is_load ? load_seqs_ : store_seqs_).push_back(seq);
  entries_.push_back(e);
}

Placement ConventionalLsq::on_address_ready(const MemOpDesc& op) {
  Entry* self = find(op.seq);
  assert(self != nullptr && !self->flags.addr_known());
  self->addr = op.addr;
  self->size = op.size;
  self->flags.set_addr_known(true);
  self->flags.set_data_ready(op.data_ready);
  if (ledger_ != nullptr) ledger_->on_addr_write();

  std::uint64_t compared = 0;
  if (op.is_load) {
    // Compare against older stores with known addresses (the store ring
    // holds exactly the stores, in age order); remember the youngest
    // overlapping one. Bit-identical to the full age-ordered walk: the
    // entries skipped here are the ones `continue` dismissed before.
    for (std::size_t i = 0; i < store_seqs_.size(); ++i) {
      const InstSeq st = store_seqs_[i];
      if (st >= op.seq) break;
      const Entry& e = *find(st);
      if (!e.flags.addr_known()) continue;
      ++compared;
      if (ranges_overlap(op.addr, op.size, e.addr, e.size)) {
        self->fwd_store = e.seq;
        self->flags.set_fwd_full(
            range_covers(op.addr, op.size, e.addr, e.size));
      }
    }
  } else {
    // Compare against younger loads with known addresses and update
    // their forwarding information. Entering the load ring from the
    // young end stops the walk at this store's own age; each load's
    // update reads only its own state, so the reversed visit order
    // changes no outcome (and `compared` is a count).
    if (op.data_ready && ledger_ != nullptr) ledger_->on_datum_write();
    for (std::size_t i = load_seqs_.size(); i-- > 0;) {
      const InstSeq l = load_seqs_[i];
      if (l <= op.seq) break;
      Entry& e = *find(l);
      if (!e.flags.addr_known()) continue;
      ++compared;
      if (ranges_overlap(e.addr, e.size, op.addr, op.size) &&
          (e.fwd_store == kNoInst || e.fwd_store < op.seq)) {
        e.fwd_store = op.seq;
        e.flags.set_fwd_full(range_covers(e.addr, e.size, op.addr, op.size));
      }
    }
  }
  if (ledger_ != nullptr) ledger_->on_addr_search(compared);
  return Placement{Placement::Status::kPlaced};
}

void ConventionalLsq::drain(std::vector<InstSeq>& /*newly_placed*/) {}

bool ConventionalLsq::is_placed(InstSeq seq) const {
  const Entry* e = find(seq);
  return e != nullptr && e->flags.addr_known();
}

LoadPlan ConventionalLsq::plan_load(InstSeq seq) const {
  const Entry* e = find(seq);
  assert(e != nullptr && e->flags.is_load() && e->flags.addr_known());
  LoadPlan p;
  // A reference to an already-committed store means memory is up to date:
  // fall back to the cache (lazy form of the eager clearing on commit).
  if (e->fwd_store == kNoInst || !store_live(e->fwd_store)) {
    p.kind = LoadPlan::Kind::kCacheAccess;
    return p;
  }
  const Entry* s = find(e->fwd_store);
  assert(s != nullptr);
  p.store = e->fwd_store;
  if (!e->flags.fwd_full()) {
    p.kind = LoadPlan::Kind::kWaitCommit;
  } else if (s->flags.data_ready()) {
    p.kind = LoadPlan::Kind::kForwardReady;
  } else {
    p.kind = LoadPlan::Kind::kForwardWait;
  }
  return p;
}

CacheHints ConventionalLsq::cache_hints(InstSeq /*seq*/) const {
  return CacheHints{};  // the conventional LSQ caches nothing
}

void ConventionalLsq::on_cache_access_complete(InstSeq /*seq*/,
                                               std::uint32_t /*set*/,
                                               std::uint32_t /*way*/) {}

void ConventionalLsq::on_load_complete(InstSeq seq) {
  assert(find(seq) != nullptr);
  if (ledger_ != nullptr) ledger_->on_datum_write();
  // A forwarded load also read the store's datum (only if the store is
  // still queued — after its commit the datum came from the cache).
  const Entry* e = find(seq);
  if (e->fwd_store != kNoInst && store_live(e->fwd_store) &&
      e->flags.fwd_full() && ledger_ != nullptr) {
    ledger_->on_datum_read();
  }
}

void ConventionalLsq::on_store_data_ready(InstSeq seq) {
  Entry* e = find(seq);
  assert(e != nullptr && !e->flags.is_load());
  e->flags.set_data_ready(true);
  if (ledger_ != nullptr) ledger_->on_datum_write();
}

void ConventionalLsq::on_commit(InstSeq seq) {
  assert(!entries_.empty() && entries_.front().seq == seq);
  const Entry& e = entries_.front();
  if (!e.flags.is_load() && ledger_ != nullptr) {
    ledger_->on_datum_read();  // the store's datum leaves for the cache
    ledger_->on_addr_read();
  }
  // Loads that planned to forward from this store fall back to the cache;
  // their references go stale and store_live() filters them at read time,
  // so commit is O(1) instead of an O(n) ref sweep + front erase.
  where_.erase(seq);
  ++occ_epoch_;
  {
    RingDeque<InstSeq>& ring = e.flags.is_load() ? load_seqs_ : store_seqs_;
    assert(!ring.empty() && ring.front() == seq);
    ring.pop_front();
  }
  entries_.pop_front();
  ++front_abs_;
}

void ConventionalLsq::squash_from(InstSeq seq) {
  ++occ_epoch_;
  while (!entries_.empty() && entries_.back().seq >= seq) {
    where_.erase(entries_.back().seq);
    entries_.pop_back();
    --next_abs_;
  }
  while (!load_seqs_.empty() && load_seqs_.back() >= seq) load_seqs_.pop_back();
  while (!store_seqs_.empty() && store_seqs_.back() >= seq) {
    store_seqs_.pop_back();
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.fwd_store != kNoInst && e.fwd_store >= seq) {
      e.fwd_store = kNoInst;
      e.flags.set_fwd_full(false);
    }
  }
}

OccupancySample ConventionalLsq::occupancy() const {
  OccupancySample s;
  s.entries_used = static_cast<std::uint32_t>(entries_.size());
  return s;
}

OccupancySample ConventionalLsq::recount_occupancy() const {
  // From-scratch recount off the age ring, cross-checking the O(1) seq
  // table: every queued entry must resolve through find() to itself, and
  // the absolute-index arithmetic must agree with the ring position.
  OccupancySample sample;
  std::size_t loads = 0;
  std::size_t stores = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    assert(i == 0 || entries_[i - 1].seq < e.seq);
    const std::uint64_t* abs = where_.find(e.seq);
    assert(abs != nullptr && *abs - front_abs_ == i);
    assert(find(e.seq) == &e);
    (void)abs;
    ++(e.flags.is_load() ? loads : stores);
    ++sample.entries_used;
  }
  assert(front_abs_ + entries_.size() == next_abs_);
  // The kind-split age rings must mirror the queue exactly — the
  // disambiguation walks read them instead of entries_.
  assert(loads == load_seqs_.size());
  assert(stores == store_seqs_.size());
  (void)loads;
  (void)stores;
  assert(sample.entries_used == occupancy().entries_used);
  return sample;
}

std::unique_ptr<ConventionalLsq> make_unbounded_lsq(std::uint32_t window) {
  ConventionalLsqConfig cfg;
  cfg.entries = window;
  cfg.unbounded = true;
  return std::make_unique<ConventionalLsq>(cfg, nullptr);
}

}  // namespace samie::lsq
