#include "src/lsq/arb_lsq.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/common/bit_scan.h"

namespace samie::lsq {

ArbLsq::ArbLsq(const ArbConfig& cfg)
    : cfg_(cfg),
      line_shift_(log2_floor(cfg.line_bytes)),
      slot_words_((cfg.max_inflight + 63) / 64),
      row_words_((cfg.rows_per_bank + 63) / 64),
      where_(1024) {
  if (cfg_.banks == 0 || cfg_.rows_per_bank == 0 || cfg_.max_inflight == 0) {
    throw std::invalid_argument(
        "ArbConfig: banks, rows_per_bank and max_inflight must be >= 1");
  }
  rows_.resize(static_cast<std::size_t>(cfg_.banks) * cfg_.rows_per_bank);
  for (auto& r : rows_) {
    r.slots.resize(cfg_.max_inflight);
    r.slot_mask.assign(slot_words_, 0);
  }
  row_masks_.assign(static_cast<std::size_t>(cfg_.banks) * row_words_, 0);
  waiting_.reserve(cfg_.max_inflight);
  dispatched_.reserve(cfg_.max_inflight);
}

std::uint32_t ArbLsq::bank_of(Addr line) const {
  return static_cast<std::uint32_t>(line % cfg_.banks);
}

std::uint32_t ArbLsq::find_row(std::uint32_t bank, Addr line) const {
  const std::uint64_t* words = &row_masks_[bank * row_words_];
  for (std::uint32_t wi = 0; wi < row_words_; ++wi) {
    for (std::uint64_t m = words[wi]; m != 0; m &= m - 1) {
      const std::uint32_t r = wi * 64 + ctz(m);
      if (row_at(bank, r).line == line) return r;
    }
  }
  return cfg_.rows_per_bank;
}

bool ArbLsq::can_dispatch(bool /*is_load*/) const {
  return dispatched_.size() < cfg_.max_inflight;
}

void ArbLsq::on_dispatch(InstSeq seq, bool /*is_load*/) {
  assert(dispatched_.empty() || dispatched_.back() < seq);
  ++occ_epoch_;
  dispatched_.push_back(seq);
}

void ArbLsq::disambiguate(const MemOpDesc& op, Row& row,
                          std::uint32_t slot_idx) {
  Slot& self = row.slots[slot_idx];
  if (op.is_load) {
    for (std::uint32_t wi = 0; wi < slot_words_; ++wi) {
      for (std::uint64_t m = row.slot_mask[wi]; m != 0; m &= m - 1) {
        const Slot& s = row.slots[wi * 64 + ctz(m)];
        if (s.flags.is_load() || s.seq >= op.seq) continue;
        if (ranges_overlap(op.addr & 0xFF, op.size, s.offset, s.size)) {
          if (self.fwd_store == kNoInst || s.seq > self.fwd_store) {
            self.fwd_store = s.seq;
            self.flags.set_fwd_full(range_covers(static_cast<Addr>(self.offset),
                                                 op.size, s.offset, s.size));
          }
        }
      }
    }
  } else {
    for (std::uint32_t wi = 0; wi < slot_words_; ++wi) {
      for (std::uint64_t m = row.slot_mask[wi]; m != 0; m &= m - 1) {
        Slot& s = row.slots[wi * 64 + ctz(m)];
        if (!s.flags.is_load() || s.seq <= op.seq) continue;
        if (ranges_overlap(s.offset, s.size, self.offset, self.size) &&
            (s.fwd_store == kNoInst || s.fwd_store < op.seq)) {
          s.fwd_store = op.seq;
          s.flags.set_fwd_full(range_covers(static_cast<Addr>(s.offset), s.size,
                                            self.offset, self.size));
        }
      }
    }
  }
}

bool ArbLsq::try_place(const MemOpDesc& op) {
  const Addr line = op.addr >> line_shift_;
  const std::uint32_t bank = bank_of(line);
  std::uint32_t row_idx = find_row(bank, line);
  if (row_idx >= cfg_.rows_per_bank) {
    // Allocate a free row in the bank.
    row_idx =
        first_free(&row_masks_[bank * row_words_], cfg_.rows_per_bank);
    if (row_idx >= cfg_.rows_per_bank) return false;
    Row& row = row_at(bank, row_idx);
    row.valid = true;
    row.line = line;
    assert(row.used == 0);
    row_masks_[bank * row_words_ + row_idx / 64] |= 1ULL << (row_idx % 64);
    ++rows_used_;
  }
  Row& row = row_at(bank, row_idx);

  const std::uint32_t slot_idx =
      first_free(row.slot_mask.data(), cfg_.max_inflight);
  // The global in-flight cap bounds slots per row, so a valid row always
  // has a free slot.
  assert(slot_idx < cfg_.max_inflight);
  ++occ_epoch_;
  Slot& s = row.slots[slot_idx];
  s.seq = op.seq;
  s.offset = static_cast<std::uint8_t>(op.addr & (cfg_.line_bytes - 1));
  s.size = op.size;
  s.fwd_store = kNoInst;
  s.flags = SlotFlags::make(/*valid=*/true, op.is_load, op.data_ready);
  row.slot_mask[slot_idx / 64] |= 1ULL << (slot_idx % 64);
  ++row.used;
  ++slots_placed_;
  where_.insert(op.seq, Loc{bank, row_idx, slot_idx});

  // Recompute the self offset into a line-relative op for disambiguation.
  MemOpDesc rel = op;
  rel.addr = s.offset;
  disambiguate(rel, row, slot_idx);
  return true;
}

Placement ArbLsq::on_address_ready(const MemOpDesc& op) {
  if (try_place(op)) return Placement{Placement::Status::kPlaced};
  ++conflicts_;
  ++occ_epoch_;
  waiting_.push_back(op);
  return Placement{Placement::Status::kBuffered};
}

void ArbLsq::drain(std::vector<InstSeq>& newly_placed) {
  while (!waiting_.empty()) {
    const MemOpDesc op = waiting_.front();
    if (!try_place(op)) break;
    newly_placed.push_back(op.seq);
    ++occ_epoch_;
    waiting_.pop_front();
  }
  // A head left in the FIFO just failed against current state; until a
  // slot frees (commit/squash), further retries are provably no-ops and
  // the engine may fast-forward past them.
  drain_blocked_ = !waiting_.empty();
}

bool ArbLsq::is_placed(InstSeq seq) const {
  return where_.find(seq) != nullptr;
}

const ArbLsq::Slot* ArbLsq::slot_of(InstSeq seq) const {
  return const_cast<ArbLsq*>(this)->slot_of(seq);
}

ArbLsq::Slot* ArbLsq::slot_of(InstSeq seq) {
  const Loc* loc = where_.find(seq);
  if (loc == nullptr) return nullptr;
  return &row_at(loc->bank, loc->row).slots[loc->slot];
}

LoadPlan ArbLsq::plan_load(InstSeq seq) const {
  const Slot* s = slot_of(seq);
  assert(s != nullptr && s->flags.is_load());
  LoadPlan p;
  if (s->fwd_store == kNoInst) return p;
  const Slot* st = slot_of(s->fwd_store);
  assert(st != nullptr);
  p.store = s->fwd_store;
  if (!s->flags.fwd_full()) {
    p.kind = LoadPlan::Kind::kWaitCommit;
  } else if (st->flags.data_ready()) {
    p.kind = LoadPlan::Kind::kForwardReady;
  } else {
    p.kind = LoadPlan::Kind::kForwardWait;
  }
  return p;
}

void ArbLsq::on_store_data_ready(InstSeq seq) {
  Slot* s = slot_of(seq);
  assert(s != nullptr && !s->flags.is_load());
  s->flags.set_data_ready(true);
}

void ArbLsq::free_slot(const Loc& loc) {
  ++occ_epoch_;
  Row& row = row_at(loc.bank, loc.row);
  Slot& s = row.slots[loc.slot];
  assert(s.flags.valid());
  s.flags.set_valid(false);
  s.flags.set_fwd_full(false);
  s.seq = kNoInst;
  s.fwd_store = kNoInst;
  row.slot_mask[loc.slot / 64] &= ~(1ULL << (loc.slot % 64));
  assert(row.used > 0);
  --row.used;
  --slots_placed_;
  if (row.used == 0) {
    row.valid = false;
    row_masks_[loc.bank * row_words_ + loc.row / 64] &=
        ~(1ULL << (loc.row % 64));
    --rows_used_;
  }
}

void ArbLsq::on_commit(InstSeq seq) {
  const Loc* at = where_.find(seq);
  assert(at != nullptr);
  const Loc loc = *at;
  Row& row = row_at(loc.bank, loc.row);
  // Clear forwarding references to this store, then release the slot.
  for (std::uint32_t wi = 0; wi < slot_words_; ++wi) {
    for (std::uint64_t m = row.slot_mask[wi]; m != 0; m &= m - 1) {
      Slot& s = row.slots[wi * 64 + ctz(m)];
      if (s.fwd_store == seq) {
        s.fwd_store = kNoInst;
        s.flags.set_fwd_full(false);
      }
    }
  }
  free_slot(loc);
  where_.erase(seq);
  assert(!dispatched_.empty() && dispatched_.front() == seq);
  ++occ_epoch_;
  dispatched_.pop_front();
  drain_blocked_ = false;  // a freed slot can unblock the retry FIFO
}

void ArbLsq::squash_from(InstSeq seq) {
  // The age FIFO names every dispatched instruction >= seq; placed ones
  // release their slot, the rest were only occupying the in-flight cap.
  // Forwarding references are strictly intra-row (disambiguate links a
  // load only to stores on its own line, which is its own row), so the
  // rows holding squashed *stores* are the only places a stale ref can
  // survive — collect them while popping and clear just those instead
  // of sweeping every row of every bank. O(squashed) end to end.
  ++occ_epoch_;
  squash_rows_scratch_.clear();
  while (!dispatched_.empty() && dispatched_.back() >= seq) {
    const InstSeq s = dispatched_.back();
    if (const Loc* loc = where_.find(s)) {
      if (!row_at(loc->bank, loc->row).slots[loc->slot].flags.is_load()) {
        squash_rows_scratch_.push_back(loc->bank * cfg_.rows_per_bank +
                                       loc->row);
      }
      free_slot(*loc);
      where_.erase(s);
    }
    dispatched_.pop_back();
  }
  std::sort(squash_rows_scratch_.begin(), squash_rows_scratch_.end());
  squash_rows_scratch_.erase(
      std::unique(squash_rows_scratch_.begin(), squash_rows_scratch_.end()),
      squash_rows_scratch_.end());
  for (const std::uint32_t ri : squash_rows_scratch_) {
    Row& row = rows_[ri];  // may have been freed by the pops: masks are 0
    for (std::uint32_t wi = 0; wi < slot_words_; ++wi) {
      for (std::uint64_t m = row.slot_mask[wi]; m != 0; m &= m - 1) {
        Slot& s = row.slots[wi * 64 + ctz(m)];
        if (s.fwd_store != kNoInst && s.fwd_store >= seq) {
          s.fwd_store = kNoInst;
          s.flags.set_fwd_full(false);
        }
      }
    }
  }
  // The wait queue is ordered by agen completion, not by age: filter it.
  waiting_.erase_if([seq](const MemOpDesc& op) { return op.seq >= seq; });
  drain_blocked_ = false;  // freed slots (and a new head) invalidate the proof
}

OccupancySample ArbLsq::occupancy() const {
  OccupancySample s;
  s.entries_used = static_cast<std::uint32_t>(dispatched_.size());
  s.buffer_used = static_cast<std::uint32_t>(waiting_.size());
  s.distrib_entries_used = rows_used_;
  s.distrib_slots_used = slots_placed_;
  return s;
}

OccupancySample ArbLsq::recount_occupancy() const {
  // From-scratch recount off the per-slot valid flags — deliberately NOT
  // off the bitmasks, so it cross-checks mask maintenance too.
  OccupancySample sample;
  sample.entries_used = static_cast<std::uint32_t>(dispatched_.size());
  sample.buffer_used = static_cast<std::uint32_t>(waiting_.size());
  for (std::uint32_t b = 0; b < cfg_.banks; ++b) {
    for (std::uint32_t r = 0; r < cfg_.rows_per_bank; ++r) {
      const Row& row = row_at(b, r);
      std::uint32_t used = 0;
      for (std::uint32_t i = 0; i < cfg_.max_inflight; ++i) {
        const bool valid = row.slots[i].flags.valid();
        assert(valid == ((row.slot_mask[i / 64] >> (i % 64) & 1ULL) != 0));
        if (!valid) continue;
        ++used;
        const Loc* loc = where_.find(row.slots[i].seq);
        assert(loc != nullptr && loc->bank == b && loc->row == r &&
               loc->slot == i);
        (void)loc;
      }
      assert(used == row.used);
      assert(row.valid == (used > 0));
      assert(row.valid ==
             ((row_masks_[b * row_words_ + r / 64] >> (r % 64) & 1ULL) != 0));
      if (used > 0) {
        ++sample.distrib_entries_used;
        sample.distrib_slots_used += used;
      }
    }
  }
  return sample;
}

}  // namespace samie::lsq
