#include "src/lsq/arb_lsq.h"

#include <algorithm>
#include <cassert>

namespace samie::lsq {

ArbLsq::ArbLsq(const ArbConfig& cfg)
    : cfg_(cfg), line_shift_(log2_floor(cfg.line_bytes)) {
  rows_.resize(static_cast<std::size_t>(cfg_.banks) * cfg_.rows_per_bank);
  for (auto& r : rows_) r.slots.reserve(8);
}

std::uint32_t ArbLsq::bank_of(Addr line) const {
  return static_cast<std::uint32_t>(line % cfg_.banks);
}

ArbLsq::Row* ArbLsq::find_row(std::uint32_t bank, Addr line) {
  Row* base = &rows_[static_cast<std::size_t>(bank) * cfg_.rows_per_bank];
  for (std::uint32_t r = 0; r < cfg_.rows_per_bank; ++r) {
    if (base[r].valid && base[r].line == line) return &base[r];
  }
  return nullptr;
}

bool ArbLsq::can_dispatch(bool /*is_load*/) const {
  return dispatched_.size() < cfg_.max_inflight;
}

void ArbLsq::on_dispatch(InstSeq seq, bool /*is_load*/) {
  assert(dispatched_.empty() || dispatched_.back() < seq);
  dispatched_.push_back(seq);
}

void ArbLsq::disambiguate(const MemOpDesc& op, Row& row, std::uint32_t slot_idx) {
  Slot& self = row.slots[slot_idx];
  if (op.is_load) {
    for (const Slot& s : row.slots) {
      if (s.seq == kNoInst || s.is_load || s.seq >= op.seq) continue;
      if (ranges_overlap(op.addr & 0xFF, op.size, s.offset, s.size)) {
        if (self.fwd_store == kNoInst || s.seq > self.fwd_store) {
          self.fwd_store = s.seq;
          self.fwd_full = range_covers(static_cast<Addr>(self.offset), op.size,
                                       s.offset, s.size);
        }
      }
    }
  } else {
    for (Slot& s : row.slots) {
      if (s.seq == kNoInst || !s.is_load || s.seq <= op.seq) continue;
      if (ranges_overlap(s.offset, s.size, self.offset, self.size) &&
          (s.fwd_store == kNoInst || s.fwd_store < op.seq)) {
        s.fwd_store = op.seq;
        s.fwd_full = range_covers(static_cast<Addr>(s.offset), s.size,
                                  self.offset, self.size);
      }
    }
  }
}

bool ArbLsq::try_place(const MemOpDesc& op) {
  const Addr line = op.addr >> line_shift_;
  const std::uint32_t bank = bank_of(line);
  Row* row = find_row(bank, line);
  if (row == nullptr) {
    // Allocate a free row in the bank.
    Row* base = &rows_[static_cast<std::size_t>(bank) * cfg_.rows_per_bank];
    for (std::uint32_t r = 0; r < cfg_.rows_per_bank; ++r) {
      if (!base[r].valid) {
        row = &base[r];
        row->valid = true;
        row->line = line;
        row->slots.clear();
        break;
      }
    }
  }
  if (row == nullptr) return false;

  Slot s;
  s.seq = op.seq;
  s.offset = static_cast<std::uint8_t>(op.addr & (cfg_.line_bytes - 1));
  s.size = op.size;
  s.is_load = op.is_load;
  s.data_ready = op.data_ready;
  row->slots.push_back(s);
  const auto slot_idx = static_cast<std::uint32_t>(row->slots.size() - 1);
  const auto row_idx = static_cast<std::uint32_t>(
      (row - rows_.data()) % cfg_.rows_per_bank);
  where_[op.seq] = Loc{bank, row_idx, slot_idx};

  // Recompute the self offset into a line-relative op for disambiguation.
  MemOpDesc rel = op;
  rel.addr = s.offset;
  disambiguate(rel, *row, slot_idx);
  return true;
}

Placement ArbLsq::on_address_ready(const MemOpDesc& op) {
  if (try_place(op)) return Placement{Placement::Status::kPlaced};
  ++conflicts_;
  waiting_.push_back(op);
  return Placement{Placement::Status::kBuffered};
}

void ArbLsq::drain(std::vector<InstSeq>& newly_placed) {
  while (!waiting_.empty()) {
    if (!try_place(waiting_.front())) break;
    newly_placed.push_back(waiting_.front().seq);
    waiting_.pop_front();
  }
}

bool ArbLsq::is_placed(InstSeq seq) const { return where_.count(seq) != 0; }

const ArbLsq::Slot* ArbLsq::slot_of(InstSeq seq) const {
  return const_cast<ArbLsq*>(this)->slot_of(seq);
}

ArbLsq::Slot* ArbLsq::slot_of(InstSeq seq) {
  auto it = where_.find(seq);
  if (it == where_.end()) return nullptr;
  Row& row = rows_[static_cast<std::size_t>(it->second.bank) * cfg_.rows_per_bank +
                   it->second.row];
  return &row.slots[it->second.slot];
}

LoadPlan ArbLsq::plan_load(InstSeq seq) const {
  const Slot* s = slot_of(seq);
  assert(s != nullptr && s->is_load);
  LoadPlan p;
  if (s->fwd_store == kNoInst) return p;
  const Slot* st = slot_of(s->fwd_store);
  assert(st != nullptr);
  p.store = s->fwd_store;
  if (!s->fwd_full) {
    p.kind = LoadPlan::Kind::kWaitCommit;
  } else if (st->data_ready) {
    p.kind = LoadPlan::Kind::kForwardReady;
  } else {
    p.kind = LoadPlan::Kind::kForwardWait;
  }
  return p;
}

void ArbLsq::on_store_data_ready(InstSeq seq) {
  Slot* s = slot_of(seq);
  assert(s != nullptr && !s->is_load);
  s->data_ready = true;
}

void ArbLsq::on_commit(InstSeq seq) {
  auto it = where_.find(seq);
  assert(it != where_.end());
  Row& row = rows_[static_cast<std::size_t>(it->second.bank) * cfg_.rows_per_bank +
                   it->second.row];
  // Clear forwarding references to this store, then remove the slot.
  for (Slot& s : row.slots) {
    if (s.fwd_store == seq) {
      s.fwd_store = kNoInst;
      s.fwd_full = false;
    }
  }
  const std::uint32_t idx = it->second.slot;
  row.slots.erase(row.slots.begin() + idx);
  // Fix up the locations of the slots that shifted down.
  for (std::uint32_t i = idx; i < row.slots.size(); ++i) {
    where_[row.slots[i].seq].slot = i;
  }
  if (row.slots.empty()) row.valid = false;
  where_.erase(it);
  assert(!dispatched_.empty() && dispatched_.front() == seq);
  dispatched_.pop_front();
}

void ArbLsq::squash_from(InstSeq seq) {
  for (Row& row : rows_) {
    if (!row.valid) continue;
    for (std::size_t i = row.slots.size(); i-- > 0;) {
      if (row.slots[i].seq >= seq) {
        where_.erase(row.slots[i].seq);
        row.slots.erase(row.slots.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    for (std::uint32_t i = 0; i < row.slots.size(); ++i) {
      where_[row.slots[i].seq].slot = i;
    }
    for (Slot& s : row.slots) {
      if (s.fwd_store != kNoInst && s.fwd_store >= seq) {
        s.fwd_store = kNoInst;
        s.fwd_full = false;
      }
    }
    if (row.slots.empty()) row.valid = false;
  }
  // The wait queue is ordered by agen completion, not by age: filter it.
  std::erase_if(waiting_, [seq](const MemOpDesc& op) { return op.seq >= seq; });
  while (!dispatched_.empty() && dispatched_.back() >= seq) dispatched_.pop_back();
}

OccupancySample ArbLsq::occupancy() const {
  OccupancySample s;
  s.entries_used = static_cast<std::uint32_t>(dispatched_.size());
  s.buffer_used = static_cast<std::uint32_t>(waiting_.size());
  return s;
}

}  // namespace samie::lsq
