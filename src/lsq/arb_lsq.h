// ARB: the Address Resolution Buffer of Franklin & Sohi [4], the banked
// baseline of the paper's Figure 1.
//
// N banks are selected by low-order line-address bits; each bank holds M
// rows ("addresses"), each row one cache-line address with slots for up to
// P instructions, P being the global in-flight memory-instruction cap
// (the paper: "there is space for N*M*P instructions but only P
// instructions are allowed in total").
//
// Instructions that find their bank's rows exhausted wait and retry
// (there is no AddrBuffer in the ARB); forward progress is guaranteed by
// the same deadlock-avoidance flush the core applies to SAMIE-LSQ.
//
// Hot-path representation (mirrors SamieLsq so the Figure-1 baseline is
// measured on equal footing):
//   * the seq -> location index is a flat ring-indexed SeqRingTable, not
//     an unordered_map — O(1), no hashing, no allocation;
//   * each bank keeps a multi-word valid bitmask over its rows and each
//     row one over its P slots, so row lookup, slot allocation,
//     disambiguation and frees are countr_zero scans over set bits only;
//   * the retry queue and the dispatched-age FIFO are reserved RingDeques
//     (the deques they replace allocated chunk nodes as ops streamed
//     through);
//   * occupancy is tracked by O(1) counters (rows_used / slots_placed),
//     cross-checked by recount_occupancy() in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/ring_deque.h"
#include "src/common/seq_ring_table.h"
#include "src/lsq/lsq_interface.h"

namespace samie::lsq {

struct ArbConfig {
  std::uint32_t banks = 8;
  std::uint32_t rows_per_bank = 16;  ///< "addresses" per bank
  /// Global in-flight memory-instruction cap (= slots per row).
  std::uint32_t max_inflight = 128;
  std::uint32_t line_bytes = 32;
};

class ArbLsq final : public LoadStoreQueue {
 public:
  /// Throws std::invalid_argument when banks, rows_per_bank or
  /// max_inflight is zero.
  explicit ArbLsq(const ArbConfig& cfg);

  [[nodiscard]] LsqKind kind() const override { return LsqKind::kArb; }

  [[nodiscard]] bool can_dispatch(bool is_load) const override;
  void on_dispatch(InstSeq seq, bool is_load) override;
  [[nodiscard]] bool can_compute_address() const override { return true; }

  Placement on_address_ready(const MemOpDesc& op) override;
  void drain(std::vector<InstSeq>& newly_placed) override;
  [[nodiscard]] bool is_placed(InstSeq seq) const override;

  [[nodiscard]] LoadPlan plan_load(InstSeq seq) const override;
  [[nodiscard]] CacheHints cache_hints(InstSeq /*seq*/) const override {
    return CacheHints{};
  }
  void on_cache_access_complete(InstSeq /*seq*/, std::uint32_t /*set*/,
                                std::uint32_t /*way*/) override {}
  void on_load_complete(InstSeq /*seq*/) override {}
  void on_store_data_ready(InstSeq seq) override;

  void on_commit(InstSeq seq) override;
  void squash_from(InstSeq seq) override;
  void on_cache_line_replaced(std::uint32_t /*set*/) override {}

  [[nodiscard]] OccupancySample occupancy() const override;

  // -- work-ledger hooks (event-driven engine; non-virtual by design:
  //    Core<ArbLsq> binds them statically) ------------------------------------
  /// True when next cycle's drain() could differ from a no-op. A failed
  /// retry mutates nothing (try_place is read-only on failure and the ARB
  /// charges no retry energy), so once the FIFO head has been retried
  /// against unchanged state the queue is provably stuck until a commit
  /// or squash frees a slot — those clear `drain_blocked_`.
  [[nodiscard]] bool has_pending_work() const noexcept {
    return !waiting_.empty() && !drain_blocked_;
  }
  /// The ARB holds no time-triggered state: work appears only through
  /// core calls, which themselves wake the engine.
  [[nodiscard]] Cycle next_ready_cycle(Cycle /*now*/) const noexcept {
    return kNeverCycle;
  }
  /// Bumped by every mutation that can change occupancy(); the core's
  /// per-cycle sampling rebuilds the sample only when this moved.
  [[nodiscard]] std::uint64_t occupancy_epoch() const noexcept {
    return occ_epoch_;
  }

  [[nodiscard]] std::uint64_t placement_conflicts() const { return conflicts_; }
  [[nodiscard]] std::uint32_t rows_used() const { return rows_used_; }
  [[nodiscard]] std::uint32_t slots_placed() const { return slots_placed_; }
  /// Test hook: recomputes occupancy from the per-slot valid flags —
  /// deliberately not from the bitmasks, so it cross-checks mask and
  /// counter maintenance too (mirrors SamieLsq::recount_occupancy).
  [[nodiscard]] OccupancySample recount_occupancy() const;

 private:
  /// One instruction within a row. Booleans live in the packed
  /// SlotFlags status word (lsq_interface.h) — rows allocate
  /// max_inflight slots each, so the per-slot footprint matters here
  /// most of all three queues.
  struct Slot {
    InstSeq seq = kNoInst;
    InstSeq fwd_store = kNoInst;
    std::uint8_t offset = 0;  // within the line
    std::uint8_t size = 0;
    SlotFlags flags;  ///< valid / is_load / data_ready / fwd_full
  };
  struct Row {
    Addr line = 0;
    bool valid = false;
    std::uint32_t used = 0;
    /// Word w, bit i <=> slots[64w + i].valid (P can exceed one word).
    std::vector<std::uint64_t> slot_mask;
    std::vector<Slot> slots;  ///< max_inflight slots, allocated once
  };
  struct Loc {
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t slot = 0;
  };

  [[nodiscard]] std::uint32_t bank_of(Addr line) const;
  [[nodiscard]] Row& row_at(std::uint32_t bank, std::uint32_t row) {
    return rows_[static_cast<std::size_t>(bank) * cfg_.rows_per_bank + row];
  }
  [[nodiscard]] const Row& row_at(std::uint32_t bank, std::uint32_t row) const {
    return rows_[static_cast<std::size_t>(bank) * cfg_.rows_per_bank + row];
  }
  /// Index of the first valid row in `bank` holding `line`, or a value
  /// >= rows_per_bank when absent.
  [[nodiscard]] std::uint32_t find_row(std::uint32_t bank, Addr line) const;
  bool try_place(const MemOpDesc& op);
  void disambiguate(const MemOpDesc& op, Row& row, std::uint32_t slot_idx);
  void free_slot(const Loc& loc);
  [[nodiscard]] const Slot* slot_of(InstSeq seq) const;
  [[nodiscard]] Slot* slot_of(InstSeq seq);

  ArbConfig cfg_;
  std::uint32_t line_shift_;
  std::uint32_t slot_words_;  ///< ceil(max_inflight / 64)
  std::uint32_t row_words_;   ///< ceil(rows_per_bank / 64)
  std::vector<Row> rows_;     ///< banks * rows_per_bank, row-major
  /// Per bank, `row_words_` words: word w bit i <=> row 64w+i valid.
  std::vector<std::uint64_t> row_masks_;
  RingDeque<MemOpDesc> waiting_;    ///< bank-conflict retry FIFO
  /// The waiting_ head failed a retry and nothing has freed a slot since
  /// (see has_pending_work).
  bool drain_blocked_ = false;
  SeqRingTable<Loc> where_;         ///< placed seq -> location
  /// Every dispatched, uncommitted memory instruction (age-ordered). The
  /// in-flight cap and squash handling key off this, so instructions
  /// squashed before their address was computed are accounted correctly.
  RingDeque<InstSeq> dispatched_;
  std::uint64_t conflicts_ = 0;
  /// Squash scratch: row indices that held squashed stores (the only
  /// rows where stale forwarding refs can survive; see squash_from).
  std::vector<std::uint32_t> squash_rows_scratch_;
  // O(1) occupancy counters, cross-checked by recount_occupancy().
  std::uint32_t rows_used_ = 0;
  std::uint32_t slots_placed_ = 0;
  std::uint64_t occ_epoch_ = 0;  ///< see occupancy_epoch()
};

}  // namespace samie::lsq
