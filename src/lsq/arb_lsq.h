// ARB: the Address Resolution Buffer of Franklin & Sohi [4], the banked
// baseline of the paper's Figure 1.
//
// N banks are selected by low-order line-address bits; each bank holds M
// rows ("addresses"), each row one cache-line address with slots for up to
// P instructions, P being the global in-flight memory-instruction cap
// (the paper: "there is space for N*M*P instructions but only P
// instructions are allowed in total").
//
// Instructions that find their bank's rows exhausted wait and retry
// (there is no AddrBuffer in the ARB); forward progress is guaranteed by
// the same deadlock-avoidance flush the core applies to SAMIE-LSQ.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/lsq/lsq_interface.h"

namespace samie::lsq {

struct ArbConfig {
  std::uint32_t banks = 8;
  std::uint32_t rows_per_bank = 16;  ///< "addresses" per bank
  /// Global in-flight memory-instruction cap (= slots per row).
  std::uint32_t max_inflight = 128;
  std::uint32_t line_bytes = 32;
};

class ArbLsq final : public LoadStoreQueue {
 public:
  explicit ArbLsq(const ArbConfig& cfg);

  [[nodiscard]] LsqKind kind() const override { return LsqKind::kArb; }

  [[nodiscard]] bool can_dispatch(bool is_load) const override;
  void on_dispatch(InstSeq seq, bool is_load) override;
  [[nodiscard]] bool can_compute_address() const override { return true; }

  Placement on_address_ready(const MemOpDesc& op) override;
  void drain(std::vector<InstSeq>& newly_placed) override;
  [[nodiscard]] bool is_placed(InstSeq seq) const override;

  [[nodiscard]] LoadPlan plan_load(InstSeq seq) const override;
  [[nodiscard]] CacheHints cache_hints(InstSeq /*seq*/) const override {
    return CacheHints{};
  }
  void on_cache_access_complete(InstSeq /*seq*/, std::uint32_t /*set*/,
                                std::uint32_t /*way*/) override {}
  void on_load_complete(InstSeq /*seq*/) override {}
  void on_store_data_ready(InstSeq seq) override;

  void on_commit(InstSeq seq) override;
  void squash_from(InstSeq seq) override;
  void on_cache_line_replaced(std::uint32_t /*set*/) override {}

  [[nodiscard]] OccupancySample occupancy() const override;

  [[nodiscard]] std::uint64_t placement_conflicts() const { return conflicts_; }

 private:
  struct Slot {
    InstSeq seq = kNoInst;
    std::uint8_t offset = 0;  // within the line
    std::uint8_t size = 0;
    bool is_load = false;
    bool data_ready = false;
    InstSeq fwd_store = kNoInst;
    bool fwd_full = false;
  };
  struct Row {
    Addr line = 0;
    bool valid = false;
    std::vector<Slot> slots;
  };
  struct Loc {
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t slot = 0;
  };

  [[nodiscard]] std::uint32_t bank_of(Addr line) const;
  [[nodiscard]] Row* find_row(std::uint32_t bank, Addr line);
  bool try_place(const MemOpDesc& op);
  void disambiguate(const MemOpDesc& op, Row& row, std::uint32_t slot_idx);
  [[nodiscard]] const Slot* slot_of(InstSeq seq) const;
  [[nodiscard]] Slot* slot_of(InstSeq seq);

  ArbConfig cfg_;
  std::uint32_t line_shift_;
  std::vector<Row> rows_;  // banks * rows_per_bank, row-major by bank
  std::deque<MemOpDesc> waiting_;
  std::unordered_map<InstSeq, Loc> where_;
  /// Every dispatched, uncommitted memory instruction (age-ordered). The
  /// in-flight cap and squash handling key off this, so instructions
  /// squashed before their address was computed are accounted correctly.
  std::deque<InstSeq> dispatched_;
  std::uint64_t conflicts_ = 0;
};

}  // namespace samie::lsq
