// The load/store-queue contract the out-of-order core drives.
//
// Protocol (enforced by the core, tested in tests/test_lsq_*):
//   1. `can_dispatch` / `on_dispatch` at rename time (the conventional LSQ
//      allocates its age-ordered entry here; banked LSQs only track
//      occupancy caps).
//   2. When the address is computed the core calls `on_address_ready`.
//      The LSQ performs placement + disambiguation and returns kPlaced, or
//      kBuffered when the instruction must wait (SAMIE AddrBuffer, ARB
//      bank conflict). Buffered instructions are retried by `drain()`
//      every cycle with priority and surface through its output list.
//   3. A placed load's execution strategy comes from `plan_load`:
//      access the cache, forward from a store, or wait. Plans are
//      *recomputed on demand* and always reflect current queue state.
//   4. Store-to-load ordering: the core lets a load touch memory only when
//      every older store is placed (the paper's readyBit; see DESIGN.md
//      "Interpretation decisions").
//   5. `on_commit` releases the instruction; `squash_from` implements
//      branch-mispredict and deadlock-avoidance flushes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace samie::lsq {

/// Receiver for cache-side presentBit clears (see
/// LoadStoreQueue::set_present_bit_clearer). A plain interface pointer —
/// not std::function — so the per-release call on the hot path is a
/// single indirect call with no type-erasure overhead.
class PresentBitClearer {
 public:
  virtual ~PresentBitClearer() = default;
  virtual void clear_present_bit(std::uint32_t set, std::uint32_t way) = 0;
};

enum class LsqKind : std::uint8_t { kConventional, kUnbounded, kArb, kSamie };

/// A memory instruction as the LSQ sees it at address-ready time.
struct MemOpDesc {
  InstSeq seq = kNoInst;
  Addr addr = 0;
  std::uint8_t size = 8;
  bool is_load = true;
  /// Stores: data already available at placement time.
  bool data_ready = false;
};

struct Placement {
  enum class Status : std::uint8_t {
    kPlaced,    ///< resident in the queue, disambiguation done
    kBuffered,  ///< waiting (AddrBuffer / ARB conflict); drain() will retry
    kRejected,  ///< no space anywhere — caller must prevent this by gating
  };
  Status status = Status::kRejected;
};

/// How a placed, ordering-eligible load should execute.
struct LoadPlan {
  enum class Kind : std::uint8_t {
    kCacheAccess,   ///< no older in-flight store conflicts: go to memory
    kForwardReady,  ///< fully covered by an older store whose data is ready
    kForwardWait,   ///< fully covered; wait for the store's data
    kWaitCommit,    ///< partially covered; wait until the store commits
  };
  Kind kind = Kind::kCacheAccess;
  /// The store involved (forward source or blocker), if any.
  InstSeq store = kNoInst;
};

/// Packed per-slot status word shared by the three queues' slot/entry
/// records. The disambiguation and occupancy scans are bitmask walks
/// over slots, so the slot records themselves are laid out for density:
/// one byte of flags with named accessors instead of four or five
/// scattered bools (which also kept ConventionalLsq::Entry and the
/// banked queues' Slot a pointer-size smaller). Bit assignments are an
/// implementation detail; only the accessors are used.
class SlotFlags {
 public:
  [[nodiscard]] bool valid() const noexcept { return get(kValid); }
  [[nodiscard]] bool is_load() const noexcept { return get(kIsLoad); }
  [[nodiscard]] bool data_ready() const noexcept { return get(kDataReady); }
  [[nodiscard]] bool fwd_full() const noexcept { return get(kFwdFull); }
  [[nodiscard]] bool addr_known() const noexcept { return get(kAddrKnown); }

  void set_valid(bool v) noexcept { put(kValid, v); }
  void set_is_load(bool v) noexcept { put(kIsLoad, v); }
  void set_data_ready(bool v) noexcept { put(kDataReady, v); }
  void set_fwd_full(bool v) noexcept { put(kFwdFull, v); }
  void set_addr_known(bool v) noexcept { put(kAddrKnown, v); }

  /// One-write initialization at placement time (avoids five RMW ops).
  static SlotFlags make(bool valid, bool is_load, bool data_ready) noexcept {
    SlotFlags f;
    f.bits_ = static_cast<std::uint8_t>((valid ? kValid : 0U) |
                                        (is_load ? kIsLoad : 0U) |
                                        (data_ready ? kDataReady : 0U));
    return f;
  }

 private:
  enum : std::uint8_t {
    kValid = 1U << 0,
    kIsLoad = 1U << 1,
    kDataReady = 1U << 2,
    kFwdFull = 1U << 3,
    kAddrKnown = 1U << 4,  ///< conventional LSQ (address at dispatch+agen)
  };
  [[nodiscard]] bool get(std::uint8_t bit) const noexcept {
    return (bits_ & bit) != 0;
  }
  void put(std::uint8_t bit, bool v) noexcept {
    bits_ = static_cast<std::uint8_t>(v ? (bits_ | bit) : (bits_ & ~bit));
  }
  std::uint8_t bits_ = 0;
};

/// SAMIE's cached L1D location + translation (paper §3.4).
struct CacheHints {
  bool way_known = false;
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  bool translation_known = false;
};

/// O(1) occupancy snapshot, taken once per cycle by the simulator for the
/// active-area integration (Figures 11/12) and the occupancy figures (3/4).
struct OccupancySample {
  // Conventional / unbounded.
  std::uint32_t entries_used = 0;
  // SAMIE DistribLSQ.
  std::uint32_t distrib_entries_used = 0;
  std::uint32_t distrib_slots_used = 0;
  std::uint32_t distrib_banks_full = 0;    ///< banks with every entry in use
  std::uint32_t distrib_entries_full = 0;  ///< entries with every slot in use
  // SAMIE SharedLSQ.
  std::uint32_t shared_entries_used = 0;
  std::uint32_t shared_slots_used = 0;
  std::uint32_t shared_entries_full = 0;
  // SAMIE AddrBuffer (or ARB wait queue).
  std::uint32_t buffer_used = 0;

  /// Equality lets per-cycle consumers run-length-batch identical
  /// consecutive samples (occupancy changes much slower than cycles).
  [[nodiscard]] friend bool operator==(const OccupancySample&,
                                       const OccupancySample&) = default;
};

/// Byte-range helpers for disambiguation.
[[nodiscard]] constexpr bool ranges_overlap(Addr a, std::uint32_t asz, Addr b,
                                            std::uint32_t bsz) noexcept {
  return a < b + bsz && b < a + asz;
}
/// True when [b, b+bsz) fully covers [a, a+asz) — a store covering a load.
[[nodiscard]] constexpr bool range_covers(Addr a, std::uint32_t asz, Addr b,
                                          std::uint32_t bsz) noexcept {
  return b <= a && a + asz <= b + bsz;
}

class LoadStoreQueue {
 public:
  virtual ~LoadStoreQueue() = default;

  [[nodiscard]] virtual LsqKind kind() const = 0;

  // -- dispatch stage --------------------------------------------------------
  [[nodiscard]] virtual bool can_dispatch(bool is_load) const = 0;
  virtual void on_dispatch(InstSeq seq, bool is_load) = 0;
  /// Gate for issuing an address computation (SAMIE: AddrBuffer must have
  /// a free slot so placement can never be rejected — paper §3.3).
  [[nodiscard]] virtual bool can_compute_address() const = 0;
  /// How many additional address computations may safely be in flight:
  /// the number of placements guaranteed not to be rejected. The core
  /// reserves one unit per issued-but-unresolved address computation so
  /// several agens completing together can never overflow the AddrBuffer.
  [[nodiscard]] virtual std::uint32_t placement_headroom() const {
    return ~0U;
  }

  // -- address-ready / placement ---------------------------------------------
  virtual Placement on_address_ready(const MemOpDesc& op) = 0;
  /// Retry buffered instructions (called once per cycle, before issue);
  /// appends the seqs that became placed this cycle.
  virtual void drain(std::vector<InstSeq>& newly_placed) = 0;
  [[nodiscard]] virtual bool is_placed(InstSeq seq) const = 0;

  // -- load execution ----------------------------------------------------------
  [[nodiscard]] virtual LoadPlan plan_load(InstSeq seq) const = 0;
  [[nodiscard]] virtual CacheHints cache_hints(InstSeq seq) const = 0;
  /// The load/store touched the L1D at (set, way); SAMIE caches the
  /// location and the translation in the owning entry.
  virtual void on_cache_access_complete(InstSeq seq, std::uint32_t set,
                                        std::uint32_t way) = 0;
  /// A load finished (its datum is written into the queue).
  virtual void on_load_complete(InstSeq seq) = 0;
  /// A store's data became available.
  virtual void on_store_data_ready(InstSeq seq) = 0;

  // -- retirement / recovery ----------------------------------------------------
  virtual void on_commit(InstSeq seq) = 0;
  /// Remove `seq` and everything younger (squash).
  virtual void squash_from(InstSeq seq) = 0;
  /// L1D replaced a line in `set`: reset potentially-affected presentBits.
  virtual void on_cache_line_replaced(std::uint32_t set) = 0;
  /// Registers a receiver that clears the *cache-side* presentBit of
  /// (set, way) when the LSQ entry that cached that location is released.
  /// Without this, stale cache bits would trigger spurious invalidation
  /// sweeps on every later eviction of those lines. The registered
  /// receiver must stay valid for as long as the queue may release
  /// entries; pass nullptr to unregister (the core does this in its
  /// destructor, since the queue outlives it).
  virtual void set_present_bit_clearer(PresentBitClearer* /*clearer*/) {}

  // -- observability -------------------------------------------------------------
  [[nodiscard]] virtual OccupancySample occupancy() const = 0;
};

}  // namespace samie::lsq
