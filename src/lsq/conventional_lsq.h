// The baseline: a fully-associative, age-ordered load/store queue
// (paper §4.2: 128 entries; a load compares only against older stores
// whose address is known, a store only against younger loads with known
// addresses; matching loads forward from stores).
//
// With `entries >= rob_size` this doubles as the *unbounded* LSQ used as
// the normalization baseline of Figure 1 (`make_unbounded_lsq`).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/ring_deque.h"
#include "src/common/seq_ring_table.h"
#include "src/energy/ledger.h"
#include "src/lsq/lsq_interface.h"

namespace samie::lsq {

struct ConventionalLsqConfig {
  std::uint32_t entries = 128;
  bool unbounded = false;  ///< report kind()==kUnbounded (Figure 1 baseline)
};

class ConventionalLsq final : public LoadStoreQueue {
 public:
  /// `ledger` may be null (no energy accounting, e.g. inside ARB sweeps).
  ConventionalLsq(const ConventionalLsqConfig& cfg,
                  energy::ConvLsqLedger* ledger);

  [[nodiscard]] LsqKind kind() const override {
    return cfg_.unbounded ? LsqKind::kUnbounded : LsqKind::kConventional;
  }

  [[nodiscard]] bool can_dispatch(bool is_load) const override;
  void on_dispatch(InstSeq seq, bool is_load) override;
  [[nodiscard]] bool can_compute_address() const override { return true; }

  Placement on_address_ready(const MemOpDesc& op) override;
  void drain(std::vector<InstSeq>& newly_placed) override;
  [[nodiscard]] bool is_placed(InstSeq seq) const override;

  [[nodiscard]] LoadPlan plan_load(InstSeq seq) const override;
  [[nodiscard]] CacheHints cache_hints(InstSeq seq) const override;
  void on_cache_access_complete(InstSeq seq, std::uint32_t set,
                                std::uint32_t way) override;
  void on_load_complete(InstSeq seq) override;
  void on_store_data_ready(InstSeq seq) override;

  void on_commit(InstSeq seq) override;
  void squash_from(InstSeq seq) override;
  void on_cache_line_replaced(std::uint32_t /*set*/) override {}

  [[nodiscard]] OccupancySample occupancy() const override;

  // -- work-ledger hooks (event-driven engine; non-virtual by design:
  //    Core<ConventionalLsq> binds them statically) --------------------------
  /// Placement is immediate (drain() is a no-op), so the conventional
  /// queue never holds deferred work.
  [[nodiscard]] bool has_pending_work() const noexcept { return false; }
  [[nodiscard]] Cycle next_ready_cycle(Cycle /*now*/) const noexcept {
    return kNeverCycle;
  }
  /// Bumped by every mutation that can change occupancy(); the core's
  /// per-cycle sampling rebuilds the sample only when this moved.
  [[nodiscard]] std::uint64_t occupancy_epoch() const noexcept {
    return occ_epoch_;
  }

  /// Test hook: recomputes the occupancy sample by walking the age ring
  /// and cross-checks the seq ring table against it — every queued entry
  /// must be found by the O(1) lookup at its ring position (mirrors
  /// ArbLsq::recount_occupancy).
  [[nodiscard]] OccupancySample recount_occupancy() const;

 private:
  /// One queued instruction. Booleans live in the packed SlotFlags
  /// status word (lsq_interface.h): the disambiguation walk reads
  /// is_load/addr_known for every older/younger entry, and the word
  /// keeps the record one pointer smaller.
  struct Entry {
    InstSeq seq = kNoInst;
    Addr addr = 0;
    InstSeq fwd_store = kNoInst;
    std::uint8_t size = 0;
    SlotFlags flags;  ///< is_load / addr_known / data_ready / fwd_full
  };

  [[nodiscard]] Entry* find(InstSeq seq);
  [[nodiscard]] const Entry* find(InstSeq seq) const;
  /// True if `seq` names a still-queued (uncommitted) store. Forwarding
  /// references are invalidated lazily: commit just pops the ring, and
  /// readers treat a reference to a departed store as "forward from
  /// memory" — bit-identical to the eager clearing this replaced.
  [[nodiscard]] bool store_live(InstSeq seq) const {
    return !entries_.empty() && seq >= entries_.front().seq;
  }

  ConventionalLsqConfig cfg_;
  energy::ConvLsqLedger* ledger_;
  /// Age-ordered ring (entries_[i].seq increasing): allocation appends,
  /// commit pops the front in O(1) (no vector front-erase shift), squash
  /// pops from the back.
  RingDeque<Entry> entries_;
  /// O(1) seq lookup (the last binary search in the LSQ tree): maps a
  /// queued seq to its *absolute allocation index*; the ring position is
  /// that index minus `front_abs_`, which advances as commits pop the
  /// front. Squash pops rewind `next_abs_` (the indices are never reused
  /// while their owners are queued).
  SeqRingTable<std::uint64_t> where_;
  std::uint64_t front_abs_ = 0;  ///< absolute index of entries_.front()
  std::uint64_t next_abs_ = 0;   ///< absolute index of the next allocation
  std::uint64_t occ_epoch_ = 0;  ///< see occupancy_epoch()
  /// Age-ordered seqs by kind. Disambiguation only ever compares a load
  /// against *older stores* and a store against *younger loads*, so the
  /// placement walk visits exactly the relevant kind — the store walk
  /// additionally enters from the young end and stops at its own age,
  /// never touching the older half the age-ordered scan used to skip
  /// one `continue` at a time. Maintained alongside entries_: dispatch
  /// appends, commit pops the front (in-order), squash pops the back.
  RingDeque<InstSeq> load_seqs_;
  RingDeque<InstSeq> store_seqs_;
};

/// The unbounded LSQ of Figure 1: never stalls dispatch or placement.
/// `window` should be at least the ROB size.
[[nodiscard]] std::unique_ptr<ConventionalLsq> make_unbounded_lsq(
    std::uint32_t window);

}  // namespace samie::lsq
