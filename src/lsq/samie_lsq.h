// SAMIE-LSQ: the set-associative, multiple-instruction-entry load/store
// queue — the paper's contribution (Section 3).
//
// Three structures:
//   * DistribLSQ — `banks` banks selected by low-order line-address bits,
//     each with `entries_per_bank` fully-associative entries; an entry
//     holds one cache-line address and up to `slots_per_entry`
//     instructions that access that line.
//   * SharedLSQ — a small fully-associative overflow structure with the
//     same entry format (configurably unbounded for the Figure 3 study).
//   * AddrBuffer — a FIFO for instructions that fit in neither; buffered
//     instructions cannot access the cache and retry with priority.
//
// Energy events are emitted per Table 5; the entry also caches the L1D
// (set, way) behind a presentBit and the DTLB translation (Section 3.4),
// which the core exploits through `cache_hints`.
//
// Hot-path representation (this is the simulator's per-memory-op fast
// path, so it mirrors the paper's constant-factor argument):
//   * occupancy bitmasks — each bank keeps a 64-bit valid mask over its
//     entries and each entry a 64-bit valid mask over its slots, so
//     placement, same-line visits and frees scan via countr_zero/popcount
//     instead of iterating every Entry/Slot;
//   * a flat ring-indexed in-flight table (SeqRingTable, shared with
//     ArbLsq) keyed by `InstSeq % window` replaces the former
//     `unordered_map<InstSeq, Loc>` — O(1) with no hashing or allocation
//     (the table doubles in the cold, pathological case of a residue
//     collision between live instructions);
//   * the AddrBuffer is a fixed ring of `addr_buffer_slots` descriptors,
//     not a deque — placement never allocates.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/ring_deque.h"
#include "src/common/seq_ring_table.h"
#include "src/energy/ledger.h"
#include "src/lsq/lsq_interface.h"

namespace samie::lsq {

struct SamieConfig {
  std::uint32_t banks = 64;
  std::uint32_t entries_per_bank = 2;  ///< <= 64 (bank occupancy bitmask)
  std::uint32_t slots_per_entry = 8;   ///< <= 64 (entry occupancy bitmask)
  std::uint32_t shared_entries = 8;
  /// Let the SharedLSQ grow without bound (Figure 3's measurement mode).
  bool unbounded_shared = false;
  std::uint32_t addr_buffer_slots = 64;
  /// Buffered placements attempted per cycle (FIFO order, stop at first
  /// failure; they have priority over newly computed addresses).
  std::uint32_t drain_width = 4;
  std::uint32_t line_bytes = 32;
  /// L1D set count, for the presentBit invalidation protocol.
  std::uint32_t l1d_sets = 64;
  /// Clear the cache-side presentBit when the last entry caching a
  /// location is released. The paper's design leaves stale bits in the
  /// cache (§3.4 describes only the conservative reset), which makes later
  /// evictions of those lines trigger spurious bank-wide resets; this
  /// flag is the ablation that removes them (bench_ablation_sizing).
  bool clear_stale_present_bits = false;
  /// Initial size of the ring-indexed in-flight table (rounded up to a
  /// power of two). Collisions between live InstSeqs grow it; any value
  /// >= the core's ROB size never grows.
  std::uint32_t seq_window_hint = 1024;
};

class SamieLsq final : public LoadStoreQueue {
 public:
  /// Ledger may be null (no accounting). Throws std::invalid_argument
  /// when entries_per_bank or slots_per_entry exceeds 64 (the bitmask
  /// width) or banks == 0.
  SamieLsq(const SamieConfig& cfg, energy::SamieLsqLedger* ledger);

  [[nodiscard]] LsqKind kind() const override { return LsqKind::kSamie; }

  [[nodiscard]] bool can_dispatch(bool) const override { return true; }
  void on_dispatch(InstSeq, bool) override {}
  /// The paper's §3.3 alternative: agen issues only when the AddrBuffer is
  /// guaranteed to have room, so placement can never be rejected.
  [[nodiscard]] bool can_compute_address() const override {
    return placement_headroom() > 0;
  }
  /// Free AddrBuffer slots. Guarded against underflow: a configuration
  /// change or squash-ordering bug can leave more buffered ops than
  /// `addr_buffer_slots`; the headroom saturates at zero (and
  /// can_compute_address() goes false) instead of wrapping around.
  [[nodiscard]] std::uint32_t placement_headroom() const override {
    const auto used = static_cast<std::uint32_t>(buffer_.size());
    return used >= cfg_.addr_buffer_slots ? 0 : cfg_.addr_buffer_slots - used;
  }

  Placement on_address_ready(const MemOpDesc& op) override;
  void drain(std::vector<InstSeq>& newly_placed) override;
  [[nodiscard]] bool is_placed(InstSeq seq) const override {
    return where_find(seq) != nullptr;
  }

  [[nodiscard]] LoadPlan plan_load(InstSeq seq) const override;
  [[nodiscard]] CacheHints cache_hints(InstSeq seq) const override;
  void on_cache_access_complete(InstSeq seq, std::uint32_t set,
                                std::uint32_t way) override;
  void on_load_complete(InstSeq seq) override;
  void on_store_data_ready(InstSeq seq) override;

  void on_commit(InstSeq seq) override;
  void squash_from(InstSeq seq) override;
  void on_cache_line_replaced(std::uint32_t set) override;
  void set_present_bit_clearer(PresentBitClearer* clearer) override {
    clear_cache_bit_ = clearer;
  }

  [[nodiscard]] OccupancySample occupancy() const override;

  // -- work-ledger hooks (event-driven engine; non-virtual by design:
  //    Core<SamieLsq> binds them statically) ---------------------------------
  /// A non-empty AddrBuffer is always pending work: every drain() retry
  /// charges an AddrBuffer read (paper Table 5) even when the head fails
  /// to place, so cycles with buffered instructions can never be
  /// fast-forwarded without drifting the energy statistics.
  [[nodiscard]] bool has_pending_work() const noexcept {
    return !buffer_.empty();
  }
  /// SAMIE holds no time-triggered state: work appears only through core
  /// calls, which themselves wake the engine.
  [[nodiscard]] Cycle next_ready_cycle(Cycle /*now*/) const noexcept {
    return kNeverCycle;
  }
  /// Bumped by every mutation that can change occupancy(); the core's
  /// per-cycle sampling rebuilds the sample only when this moved.
  [[nodiscard]] std::uint64_t occupancy_epoch() const noexcept {
    return occ_epoch_;
  }

  // -- SAMIE-specific observability ------------------------------------------
  [[nodiscard]] std::uint64_t buffered_placements() const { return buffered_; }
  [[nodiscard]] std::uint64_t present_bit_resets() const { return present_resets_; }
  [[nodiscard]] std::uint64_t agen_gated_cycles() const { return gated_; }
  void note_agen_gated() { ++gated_; }
  [[nodiscard]] const SamieConfig& config() const { return cfg_; }
  /// Test hook: recomputes every occupancy counter from scratch and
  /// returns it, for cross-checking the O(1) bitmask bookkeeping.
  [[nodiscard]] OccupancySample recount_occupancy() const;

 private:
  /// One instruction within an entry. Booleans live in the packed
  /// SlotFlags status word (lsq_interface.h) — the disambiguation and
  /// squash scans walk many slots per op, and the word keeps the record
  /// at 24 bytes instead of 32.
  struct Slot {
    InstSeq seq = kNoInst;
    InstSeq fwd_store = kNoInst;
    std::uint8_t offset = 0;
    std::uint8_t size = 0;
    SlotFlags flags;  ///< valid / is_load / data_ready / fwd_full
  };
  struct Entry {
    Addr line = 0;  ///< line address (byte address >> line_shift)
    bool valid = false;
    bool present = false;  ///< (set, way) cached and still trustworthy
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    bool translation = false;  ///< DTLB translation cached
    std::uint32_t used = 0;
    std::uint64_t slot_mask = 0;  ///< bit i <=> slots[i].valid
    std::vector<Slot> slots;
  };
  struct Bank {
    std::uint64_t valid_mask = 0;  ///< bit i <=> entries[i].valid
    /// Sum of `used` over the valid entries. Lets the placement search
    /// charge its fused age-search event (total ids compared across the
    /// bank) without touching the entries.
    std::uint32_t slots_used = 0;
    std::vector<Entry> entries;
  };
  enum class Where : std::uint8_t { kDistrib, kShared };
  struct Loc {
    Where where = Where::kDistrib;
    std::uint32_t bank = 0;   // distrib only
    std::uint32_t entry = 0;  // index within bank / shared vector
    std::uint32_t slot = 0;
  };

  [[nodiscard]] std::uint32_t bank_of(Addr line) const {
    return bank_mask_plus1_ != 0
               ? static_cast<std::uint32_t>(line & (bank_mask_plus1_ - 1))
               : static_cast<std::uint32_t>(line % cfg_.banks);
  }
  [[nodiscard]] Entry& entry_at(const Loc& loc) {
    return loc.where == Where::kDistrib ? banks_[loc.bank].entries[loc.entry]
                                        : shared_[loc.entry];
  }
  [[nodiscard]] const Entry& entry_at(const Loc& loc) const {
    return loc.where == Where::kDistrib ? banks_[loc.bank].entries[loc.entry]
                                        : shared_[loc.entry];
  }

  // -- in-flight table (SeqRingTable; see src/common/seq_ring_table.h) --------
  [[nodiscard]] const Loc* where_find(InstSeq seq) const {
    return where_.find(seq);
  }

  /// Performs the parallel bank+shared search, charges comparison energy,
  /// and either fills a slot (returns true) or reports no space.
  bool try_place(const MemOpDesc& op, bool from_buffer);
  void fill_slot(const MemOpDesc& op, const Loc& loc, bool new_entry);
  void disambiguate(const MemOpDesc& op, Loc self_loc);
  /// Visits every valid same-line entry in the op's bank and the shared
  /// structure (bitmask scan). `fn(entry)` returns void.
  template <typename Fn>
  void for_each_same_line(Addr line, Fn&& fn);
  /// Visits every valid shared entry (multi-word bitmask scan — the
  /// shared structure can be unbounded). One body serves both constness
  /// flavours: `Self` deduces as SamieLsq or const SamieLsq, so `fn`
  /// receives Entry& or const Entry& accordingly.
  template <typename Self, typename Fn>
  static void for_each_valid_shared_impl(Self& self, Fn&& fn);
  template <typename Fn>
  void for_each_valid_shared(Fn&& fn) {
    for_each_valid_shared_impl(*this, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_valid_shared(Fn&& fn) const {
    for_each_valid_shared_impl(*this, std::forward<Fn>(fn));
  }

  void free_slot(const Loc& loc, InstSeq seq);
  void clear_forward_refs(Entry& e, InstSeq store);

  SamieConfig cfg_;
  energy::SamieLsqLedger* ledger_;
  PresentBitClearer* clear_cache_bit_ = nullptr;
  std::uint32_t line_shift_;
  std::uint64_t bank_mask_plus1_ = 0;  ///< banks when pow2 (mask = banks-1)
  std::uint64_t full_entry_mask_;  ///< (1 << entries_per_bank) - 1
  std::uint64_t full_slot_mask_;   ///< (1 << slots_per_entry) - 1
  std::vector<Bank> banks_;
  std::vector<Entry> shared_;
  std::vector<std::uint64_t> shared_valid_;  ///< word i covers entries 64i..

  /// AddrBuffer: a reserved ring — FIFO retries, order-preserving squash
  /// compaction, no steady-state allocation.
  RingDeque<MemOpDesc> buffer_;

  // In-flight location table (power-of-two ring, see class comment).
  SeqRingTable<Loc> where_;

  // Reused scratch (squash paths) — no per-call allocation.
  std::vector<std::pair<Loc, InstSeq>> squash_scratch_;
  /// Lines of squashed stores: the only entries that can hold stale
  /// forwarding refs after the frees (see squash_from).
  std::vector<Addr> squash_lines_scratch_;

  // O(1) occupancy counters (see OccupancySample).
  std::uint32_t d_entries_used_ = 0;
  std::uint32_t d_slots_used_ = 0;
  std::uint32_t d_entries_full_ = 0;
  std::uint32_t s_entries_used_ = 0;
  std::uint32_t s_slots_used_ = 0;
  std::uint32_t s_entries_full_ = 0;
  std::uint32_t banks_full_ = 0;

  std::uint64_t buffered_ = 0;
  std::uint64_t present_resets_ = 0;
  std::uint64_t gated_ = 0;
  std::uint64_t occ_epoch_ = 0;  ///< see occupancy_epoch()
};

}  // namespace samie::lsq
