// Set-associative cache timing model with LRU replacement and the
// per-line `presentBit` the SAMIE-LSQ extension relies on (paper §3.4).
//
// This is a *timing/occupancy* model: no data bytes are stored (values
// live in the simulator's MainMemory); the cache tracks which lines are
// resident, where (set/way), and which of them have their physical
// location cached in some LSQ entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace samie::mem {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 8 * 1024;
  std::uint32_t associativity = 4;
  std::uint32_t line_bytes = 32;
  /// Latency of a hit, in cycles.
  Cycle hit_latency = 2;
};

/// Result of one cache access.
struct CacheAccess {
  bool hit = false;
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  /// A valid line was evicted to make room (its presentBit state is
  /// reported so the LSQ invalidation protocol can run).
  bool evicted = false;
  std::uint32_t evicted_set = 0;
  Addr evicted_line_addr = 0;
  bool evicted_present_bit = false;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Performs an access (allocate-on-miss, LRU update). `addr` is a byte
  /// address; writes and reads behave identically for occupancy purposes.
  CacheAccess access(Addr addr);

  /// Direct access to a known (set, way): used by way-known accesses.
  /// The caller guarantees residency via the presentBit protocol; this
  /// only refreshes LRU. Returns false if the protocol was violated (the
  /// line is absent) — tests assert this never happens.
  bool access_known(std::uint32_t set, std::uint32_t way, Addr addr);

  /// Probe without side effects.
  [[nodiscard]] bool contains(Addr addr) const;

  /// presentBit plumbing (paper §3.4).
  void set_present_bit(std::uint32_t set, std::uint32_t way, bool v);
  [[nodiscard]] bool present_bit(std::uint32_t set, std::uint32_t way) const;

  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::uint32_t associativity() const { return cfg_.associativity; }
  [[nodiscard]] Cycle hit_latency() const { return cfg_.hit_latency; }
  [[nodiscard]] std::uint32_t line_bytes() const { return cfg_.line_bytes; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  void reset();

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool present_bit = false;
  };

  [[nodiscard]] std::uint32_t set_index(Addr addr) const;
  [[nodiscard]] Addr tag_of(Addr addr) const;

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_;
  std::uint32_t set_shift_;  ///< log2(num_sets_), precomputed off the hot path
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace samie::mem
