#include "src/mem/hierarchy.h"

namespace samie::mem {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d),
      l2_(cfg.l2),
      itlb_(cfg.itlb),
      dtlb_(cfg.dtlb) {}

void MemoryHierarchy::reset() {
  l1i_.reset();
  l1d_.reset();
  l2_.reset();
  itlb_.reset();
  dtlb_.reset();
}

Cycle MemoryHierarchy::fill_from_l2(Addr addr) {
  const CacheAccess l2r = l2_.access(addr);
  return l2_.hit_latency() + (l2r.hit ? 0 : cfg_.memory_latency);
}

DataAccess MemoryHierarchy::data_access_translated(Addr addr) {
  DataAccess r;
  const CacheAccess a = l1d_.access(addr);
  r.l1_hit = a.hit;
  r.set = a.set;
  r.way = a.way;
  r.latency = l1d_.hit_latency();
  if (!a.hit) r.latency += fill_from_l2(addr);
  if (a.evicted) {
    r.evicted = true;
    r.evicted_set = a.evicted_set;
    r.evicted_present_bit = a.evicted_present_bit;
  }
  return r;
}

DataAccess MemoryHierarchy::data_access(Addr addr) {
  const bool tlb_hit = dtlb_.access(addr);
  DataAccess r = data_access_translated(addr);
  if (!tlb_hit) r.latency += dtlb_.miss_penalty();
  return r;
}

MemoryHierarchy::KnownAccess MemoryHierarchy::data_access_known(
    std::uint32_t set, std::uint32_t way, Addr addr) {
  KnownAccess r;
  r.ok = l1d_.access_known(set, way, addr);
  r.latency = l1d_.hit_latency();
  return r;
}

Cycle MemoryHierarchy::inst_access(Addr pc) {
  const bool tlb_hit = itlb_.access(pc);
  const CacheAccess a = l1i_.access(pc);
  Cycle lat = l1i_.hit_latency();
  if (!a.hit) lat += fill_from_l2(pc);
  if (!tlb_hit) lat += itlb_.miss_penalty();
  // Next-line instruction prefetch: sequential fetch is the common case
  // and front ends of this era stream the next line behind the demand
  // access, so its fill latency is hidden.
  const Addr next_line = (pc | (l1i_.line_bytes() - 1)) + 1;
  if (!l1i_.contains(next_line)) {
    const CacheAccess p = l1i_.access(next_line);
    if (!p.hit) l2_.access(next_line);
  }
  return lat;
}

}  // namespace samie::mem
