// The full data/instruction memory hierarchy of the paper's Table 2:
// L1I 64KB/2-way (1 cycle), L1D 8KB/4-way (2 cycles), unified L2 512KB/4-way
// (10-cycle hit, 100-cycle miss), 128-entry fully-associative ITLB/DTLB.
#pragma once

#include <cstdint>

#include "src/mem/cache.h"
#include "src/mem/tlb.h"

namespace samie::mem {

struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I",
                  .size_bytes = 64 * 1024,
                  .associativity = 2,
                  .line_bytes = 32,
                  .hit_latency = 1};
  CacheConfig l1d{.name = "L1D",
                  .size_bytes = 8 * 1024,
                  .associativity = 4,
                  .line_bytes = 32,
                  .hit_latency = 2};
  CacheConfig l2{.name = "L2",
                 .size_bytes = 512 * 1024,
                 .associativity = 4,
                 .line_bytes = 64,
                 .hit_latency = 10};
  Cycle memory_latency = 100;
  TlbConfig itlb{};
  TlbConfig dtlb{};
};

/// Outcome of a data-side access through the hierarchy.
struct DataAccess {
  /// Total latency including TLB-miss penalty and L2/memory fills.
  Cycle latency = 0;
  bool l1_hit = false;
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  /// L1D eviction information for the presentBit invalidation protocol.
  bool evicted = false;
  std::uint32_t evicted_set = 0;
  bool evicted_present_bit = false;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& cfg);

  /// Data access with a DTLB translation (conventional path).
  DataAccess data_access(Addr addr);
  /// Data access that skips the DTLB (the SAMIE cached-translation path).
  DataAccess data_access_translated(Addr addr);
  /// Data access to a known (set, way): no tag check, no DTLB, L1-hit
  /// latency guaranteed by the presentBit protocol. Returns protocol
  /// violation via `ok == false` (must never happen).
  struct KnownAccess {
    Cycle latency = 0;
    bool ok = true;
  };
  KnownAccess data_access_known(std::uint32_t set, std::uint32_t way, Addr addr);

  /// Instruction fetch access (ITLB + L1I + L2 on miss).
  Cycle inst_access(Addr pc);

  [[nodiscard]] Cache& l1d() { return l1d_; }
  [[nodiscard]] Cache& l1i() { return l1i_; }
  [[nodiscard]] Cache& l2() { return l2_; }
  [[nodiscard]] Tlb& dtlb() { return dtlb_; }
  [[nodiscard]] Tlb& itlb() { return itlb_; }

  /// Upper bound on any data_access() latency: DTLB walk + L1D access +
  /// L2 hit + memory fill. The core sizes its completion calendar wheel
  /// one power of two above this so scheduling stays on the O(1) path.
  [[nodiscard]] Cycle worst_case_data_latency() const {
    return dtlb_.miss_penalty() + l1d_.hit_latency() + l2_.hit_latency() +
           cfg_.memory_latency;
  }

  /// Next-completion hook for the event-driven cycle engine: the cycle of
  /// the earliest completion the hierarchy still owes the core, or
  /// kNeverCycle when it owes none. This model is fully synchronous —
  /// every access returns its total latency at call time and the core
  /// schedules the completion on its calendar wheel — so the hierarchy
  /// never holds deferred work and this is constant. An asynchronous
  /// model (MSHRs, banked buses) must report its earliest in-flight fill
  /// here; the core folds it into the fast-forward wake computation, so
  /// forgetting to would make the engine skip over completions.
  [[nodiscard]] Cycle pending_completion_cycle() const noexcept {
    return kNeverCycle;
  }

  void reset();

 private:
  Cycle fill_from_l2(Addr addr);

  HierarchyConfig cfg_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Tlb itlb_;
  Tlb dtlb_;
};

}  // namespace samie::mem
