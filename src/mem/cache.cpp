#include "src/mem/cache.h"

#include <cassert>

namespace samie::mem {

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      num_sets_(static_cast<std::uint32_t>(
          cfg.size_bytes / (static_cast<std::uint64_t>(cfg.associativity) *
                            cfg.line_bytes))),
      line_shift_(log2_floor(cfg.line_bytes)),
      set_shift_(log2_floor(num_sets_)) {
  assert(is_pow2(num_sets_) && is_pow2(cfg.line_bytes));
  lines_.resize(static_cast<std::size_t>(num_sets_) * cfg_.associativity);
}

void Cache::reset() {
  for (auto& l : lines_) l = Line{};
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

std::uint32_t Cache::set_index(Addr addr) const {
  return static_cast<std::uint32_t>((addr >> line_shift_) & (num_sets_ - 1));
}

Addr Cache::tag_of(Addr addr) const {
  return addr >> line_shift_ >> set_shift_;
}

CacheAccess Cache::access(Addr addr) {
  CacheAccess r;
  r.set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(r.set) * cfg_.associativity];

  std::uint32_t victim = 0;
  std::uint64_t oldest = ~0ULL;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++tick_;
      r.hit = true;
      r.way = w;
      ++hits_;
      return r;
    }
    if (!line.valid) {
      victim = w;
      oldest = 0;  // empty way always preferred
    } else if (oldest != 0 && line.lru < oldest) {
      victim = w;
      oldest = line.lru;
    }
  }

  ++misses_;
  Line& v = base[victim];
  if (v.valid) {
    r.evicted = true;
    r.evicted_set = r.set;
    r.evicted_line_addr = ((v.tag << set_shift_) | r.set) << line_shift_;
    r.evicted_present_bit = v.present_bit;
  }
  v.valid = true;
  v.tag = tag;
  v.lru = ++tick_;
  v.present_bit = false;
  r.way = victim;
  return r;
}

bool Cache::access_known(std::uint32_t set, std::uint32_t way, Addr addr) {
  Line& line = lines_[static_cast<std::size_t>(set) * cfg_.associativity + way];
  if (!line.valid || line.tag != tag_of(addr) || set != set_index(addr)) {
    return false;
  }
  line.lru = ++tick_;
  ++hits_;
  return true;
}

bool Cache::contains(Addr addr) const {
  const std::uint32_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.associativity];
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::set_present_bit(std::uint32_t set, std::uint32_t way, bool v) {
  lines_[static_cast<std::size_t>(set) * cfg_.associativity + way].present_bit = v;
}

bool Cache::present_bit(std::uint32_t set, std::uint32_t way) const {
  return lines_[static_cast<std::size_t>(set) * cfg_.associativity + way].present_bit;
}

}  // namespace samie::mem
