#include "src/mem/tlb.h"

#include <cassert>

namespace samie::mem {

Tlb::Tlb(const TlbConfig& cfg)
    : cfg_(cfg), page_shift_(log2_floor(cfg.page_bytes)) {
  assert(is_pow2(cfg.page_bytes));
  map_.reserve(cfg_.entries * 2);
}

void Tlb::reset() {
  map_.clear();
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

bool Tlb::access(Addr vaddr) {
  const Addr vpn = vaddr >> page_shift_;
  if (auto it = map_.find(vpn); it != map_.end()) {
    it->second = ++tick_;
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= cfg_.entries) {
    // True-LRU eviction; the scan is miss-path only.
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    map_.erase(victim);
  }
  map_.emplace(vpn, ++tick_);
  return false;
}

}  // namespace samie::mem
