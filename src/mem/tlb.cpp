#include "src/mem/tlb.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace samie::mem {

namespace {

/// Renormalization threshold for the monotonic recency counter. One tick
/// is consumed per access, so reaching this takes ~9.2e18 accesses —
/// unreachable at suite scale (a full 26-program sweep consumes ~1e7) —
/// but the miss path still guards the wraparound instead of relying on
/// 64-bit luck: ticks are compressed order-preservingly before they can
/// wrap to 0 and corrupt the LRU order.
constexpr std::uint64_t kTickRenormalize =
    std::numeric_limits<std::uint64_t>::max() - (1ULL << 32);

}  // namespace

Tlb::Tlb(const TlbConfig& cfg)
    : cfg_(cfg), page_shift_(log2_floor(cfg.page_bytes)) {
  assert(is_pow2(cfg.page_bytes));
  entries_.reserve(cfg_.entries);
  index_.reserve(cfg_.entries);
}

void Tlb::reset() {
  entries_.clear();
  index_.clear();
  front_.fill(FrontEntry{});
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

Tlb::Entry* Tlb::find(Addr vpn) {
  // Front-miss path only: one hash probe into the slot index.
  const auto it = index_.find(vpn);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void Tlb::install_front(Addr vpn, std::uint64_t tick) {
  FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
  if (fe.valid && fe.vpn != vpn) {
    // The displaced page stays resident; its front-accumulated recency
    // must reach the resident set or the LRU scan would see a stale tick.
    if (Entry* e = find(fe.vpn); e != nullptr) e->tick = fe.tick;
  }
  fe.valid = true;
  fe.vpn = vpn;
  fe.tick = tick;
}

void Tlb::evict_lru() {
  // True-LRU eviction; the scan is miss-path only and walks the dense
  // array. Pages held by the front array carry their freshest tick
  // there (see effective_tick).
  assert(!entries_.empty());
  std::size_t victim = 0;
  std::uint64_t victim_tick =
      effective_tick(entries_[0].vpn, entries_[0].tick);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const std::uint64_t t = effective_tick(entries_[i].vpn, entries_[i].tick);
    if (t < victim_tick) {
      victim = i;
      victim_tick = t;
    }
  }
  FrontEntry& fe = front_[entries_[victim].vpn & (kFrontSize - 1)];
  if (fe.valid && fe.vpn == entries_[victim].vpn) fe.valid = false;
  index_.erase(entries_[victim].vpn);
  entries_[victim] = entries_.back();
  entries_.pop_back();
  if (victim < entries_.size()) {
    index_[entries_[victim].vpn] = static_cast<std::uint32_t>(victim);
  }
}

void Tlb::renormalize_ticks() {
  // Compress all live ticks into [1, n] preserving order. Cold by many
  // orders of magnitude (see kTickRenormalize); correctness only.
  std::sort(entries_.begin(), entries_.end(),
            [this](const Entry& a, const Entry& b) {
              return effective_tick(a.vpn, a.tick) <
                     effective_tick(b.vpn, b.tick);
            });
  tick_ = 0;
  index_.clear();
  for (Entry& e : entries_) {
    e.tick = ++tick_;
    index_[e.vpn] = static_cast<std::uint32_t>(&e - entries_.data());
    FrontEntry& fe = front_[e.vpn & (kFrontSize - 1)];
    if (fe.valid && fe.vpn == e.vpn) fe.tick = e.tick;
  }
}

bool Tlb::access(Addr vaddr) {
  const Addr vpn = vaddr >> page_shift_;
  FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
  if (fe.valid && fe.vpn == vpn) {
    // Front hit: no resident-set search; recency lands in the front cell.
    fe.tick = ++tick_;
    ++hits_;
    return true;
  }
  if (Entry* e = find(vpn); e != nullptr) {
    e->tick = ++tick_;
    ++hits_;
    install_front(vpn, e->tick);
    return true;
  }
  ++misses_;
  if (tick_ >= kTickRenormalize) renormalize_ticks();
  if (entries_.size() >= cfg_.entries) evict_lru();
  index_[vpn] = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{vpn, ++tick_});
  install_front(vpn, tick_);
  return false;
}

}  // namespace samie::mem
