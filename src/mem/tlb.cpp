#include "src/mem/tlb.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace samie::mem {

namespace {

/// Renormalization threshold for the monotonic recency counter. One tick
/// is consumed per access, so reaching this takes ~9.2e18 accesses —
/// unreachable at suite scale (a full 26-program sweep consumes ~1e7) —
/// but the miss path still guards the wraparound instead of relying on
/// 64-bit luck: ticks are compressed order-preservingly before they can
/// wrap to 0 and corrupt the LRU order.
constexpr std::uint64_t kTickRenormalize =
    std::numeric_limits<std::uint64_t>::max() - (1ULL << 32);

}  // namespace

Tlb::Tlb(const TlbConfig& cfg)
    : cfg_(cfg), page_shift_(log2_floor(cfg.page_bytes)) {
  assert(is_pow2(cfg.page_bytes));
  map_.reserve(cfg_.entries * 2);
}

void Tlb::reset() {
  map_.clear();
  front_.fill(FrontEntry{});
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

void Tlb::install_front(Addr vpn, std::uint64_t tick) {
  FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
  if (fe.valid && fe.vpn != vpn) {
    // The displaced page stays resident; its front-accumulated recency
    // must reach the map or the LRU scan would see a stale tick.
    if (auto it = map_.find(fe.vpn); it != map_.end()) it->second = fe.tick;
  }
  fe.valid = true;
  fe.vpn = vpn;
  fe.tick = tick;
}

void Tlb::evict_lru() {
  // True-LRU eviction; the scan is miss-path only. Pages held by the
  // front array carry their freshest tick there (see effective_tick).
  auto victim = map_.begin();
  std::uint64_t victim_tick = effective_tick(victim->first, victim->second);
  for (auto it = std::next(map_.begin()); it != map_.end(); ++it) {
    const std::uint64_t t = effective_tick(it->first, it->second);
    if (t < victim_tick) {
      victim = it;
      victim_tick = t;
    }
  }
  FrontEntry& fe = front_[victim->first & (kFrontSize - 1)];
  if (fe.valid && fe.vpn == victim->first) fe.valid = false;
  map_.erase(victim);
}

void Tlb::renormalize_ticks() {
  // Compress all live ticks into [1, n] preserving order. Cold by many
  // orders of magnitude (see kTickRenormalize); correctness only.
  std::vector<std::pair<std::uint64_t, Addr>> order;
  order.reserve(map_.size());
  for (const auto& [vpn, tick] : map_) {
    order.emplace_back(effective_tick(vpn, tick), vpn);
  }
  std::sort(order.begin(), order.end());
  tick_ = 0;
  for (const auto& [tick, vpn] : order) {
    map_[vpn] = ++tick_;
    FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
    if (fe.valid && fe.vpn == vpn) fe.tick = tick_;
  }
}

bool Tlb::access(Addr vaddr) {
  const Addr vpn = vaddr >> page_shift_;
  FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
  if (fe.valid && fe.vpn == vpn) {
    // Front hit: no hash lookup; recency lands in the front cell.
    fe.tick = ++tick_;
    ++hits_;
    return true;
  }
  if (auto it = map_.find(vpn); it != map_.end()) {
    it->second = ++tick_;
    ++hits_;
    install_front(vpn, it->second);
    return true;
  }
  ++misses_;
  if (tick_ >= kTickRenormalize) renormalize_ticks();
  if (map_.size() >= cfg_.entries) evict_lru();
  map_.emplace(vpn, ++tick_);
  install_front(vpn, tick_);
  return false;
}

}  // namespace samie::mem
