// Fully-associative TLB with true-LRU replacement (paper: 128-entry
// fully-associative ITLB and DTLB, 1-cycle hits).
//
// Hot-path representation: a small direct-mapped *front array* caches
// the most recent vpn per low-index, so the common hit re-references a
// hot page with zero search work; the resident set and the true-LRU
// scan are touched only on front misses and evictions. The front array
// is a pure cache of the lookup, not an extra TLB level — hit/miss
// outcomes and LRU victims are bit-identical to the plain
// fully-associative model (asserted by a differential test):
//   * the front only ever holds pages currently resident in the TLB
//     (eviction invalidates the victim's front cell, reset clears all);
//   * recency ticks assigned on front hits are written into the front
//     cell only; the LRU victim scan reads the front cell's tick for
//     pages the front still holds, and a displaced front occupant's
//     tick is written back to the resident set — so every page's
//     last-use tick is exact, just stored lazily ("true LRU maintained
//     only on miss").
//
// The resident set is a flat array of (vpn, tick) pairs — 2 KB at the
// paper's 128 entries, L1-resident — so the true-LRU victim scan walks
// dense cache lines instead of chasing one line per hash node (eviction
// runs on every capacity miss). Lookup into the array stays O(1)
// through a vpn → slot index maintained across push/swap-erase: a
// linear find was measurably slower on TLB-thrashy programs, where the
// front-miss path runs per access. Ticks are unique (one per access),
// so the min-tick victim is unique and independent of storage order —
// the layout changes no outcome.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace samie::mem {

struct TlbConfig {
  std::uint32_t entries = 128;
  std::uint32_t page_bytes = 4096;
  Cycle hit_latency = 1;
  Cycle miss_penalty = 30;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg);

  /// Translates; returns true on hit. Misses install the page (LRU evict).
  bool access(Addr vaddr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] Cycle hit_latency() const { return cfg_.hit_latency; }
  [[nodiscard]] Cycle miss_penalty() const { return cfg_.miss_penalty; }

  void reset();

 private:
  struct FrontEntry {
    Addr vpn = 0;
    std::uint64_t tick = 0;
    bool valid = false;
  };
  /// A resident page. `tick` may be stale while the front holds the
  /// page; see effective_tick.
  struct Entry {
    Addr vpn = 0;
    std::uint64_t tick = 0;
  };
  // Power of two; sized 2x the paper's 128 resident pages so conflict
  // evictions from the front are rare. Any size is outcome-identical
  // (the front is a pure lookup cache; see the class comment).
  static constexpr std::uint32_t kFrontSize = 256;

  /// The freshest last-use tick of a resident page: the front cell's if
  /// the front holds it, the stored one otherwise.
  [[nodiscard]] std::uint64_t effective_tick(Addr vpn,
                                             std::uint64_t stored_tick) const {
    const FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
    return fe.valid && fe.vpn == vpn ? fe.tick : stored_tick;
  }
  [[nodiscard]] Entry* find(Addr vpn);
  void install_front(Addr vpn, std::uint64_t tick);
  void evict_lru();
  void renormalize_ticks();

  TlbConfig cfg_;
  std::uint32_t page_shift_;
  /// Resident pages, unordered (ticks are unique, so no outcome depends
  /// on position). Dense: evictions swap-erase, with index_ tracking the
  /// moved entry's new slot.
  std::vector<Entry> entries_;
  /// vpn -> slot in entries_. Exactly the resident vpns.
  std::unordered_map<Addr, std::uint32_t> index_;
  std::array<FrontEntry, kFrontSize> front_{};
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace samie::mem
