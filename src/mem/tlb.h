// Fully-associative TLB with true-LRU replacement (paper: 128-entry
// fully-associative ITLB and DTLB, 1-cycle hits).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/common/types.h"

namespace samie::mem {

struct TlbConfig {
  std::uint32_t entries = 128;
  std::uint32_t page_bytes = 4096;
  Cycle hit_latency = 1;
  Cycle miss_penalty = 30;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg);

  /// Translates; returns true on hit. Misses install the page (LRU evict).
  bool access(Addr vaddr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] Cycle hit_latency() const { return cfg_.hit_latency; }
  [[nodiscard]] Cycle miss_penalty() const { return cfg_.miss_penalty; }

  void reset();

 private:
  TlbConfig cfg_;
  std::uint32_t page_shift_;
  /// vpn -> last-use tick. Hit path is O(1); the LRU victim scan runs on
  /// the (rare) miss path only.
  std::unordered_map<Addr, std::uint64_t> map_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace samie::mem
