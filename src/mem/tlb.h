// Fully-associative TLB with true-LRU replacement (paper: 128-entry
// fully-associative ITLB and DTLB, 1-cycle hits).
//
// Hot-path representation: a small direct-mapped *front array* caches
// the most recent vpn per low-index, so the common hit re-references a
// hot page with zero hash work; the hash map and the true-LRU scan are
// touched only on front misses and evictions. The front array is a pure
// cache of the lookup, not an extra TLB level — hit/miss outcomes and
// LRU victims are bit-identical to the plain fully-associative model
// (asserted by a differential test):
//   * the front only ever holds pages currently resident in the TLB
//     (eviction invalidates the victim's front cell, reset clears all);
//   * recency ticks assigned on front hits are written into the front
//     cell only; the LRU victim scan reads the front cell's tick for
//     pages the front still holds, and a displaced front occupant's
//     tick is written back to the map — so every page's last-use tick
//     is exact, just stored lazily ("true LRU maintained only on miss").
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/common/types.h"

namespace samie::mem {

struct TlbConfig {
  std::uint32_t entries = 128;
  std::uint32_t page_bytes = 4096;
  Cycle hit_latency = 1;
  Cycle miss_penalty = 30;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg);

  /// Translates; returns true on hit. Misses install the page (LRU evict).
  bool access(Addr vaddr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] Cycle hit_latency() const { return cfg_.hit_latency; }
  [[nodiscard]] Cycle miss_penalty() const { return cfg_.miss_penalty; }

  void reset();

 private:
  struct FrontEntry {
    Addr vpn = 0;
    std::uint64_t tick = 0;
    bool valid = false;
  };
  static constexpr std::uint32_t kFrontSize = 64;  // power of two

  /// The freshest last-use tick of a resident page: the front cell's if
  /// the front holds it, the map's otherwise.
  [[nodiscard]] std::uint64_t effective_tick(Addr vpn,
                                             std::uint64_t map_tick) const {
    const FrontEntry& fe = front_[vpn & (kFrontSize - 1)];
    return fe.valid && fe.vpn == vpn ? fe.tick : map_tick;
  }
  void install_front(Addr vpn, std::uint64_t tick);
  void evict_lru();
  void renormalize_ticks();

  TlbConfig cfg_;
  std::uint32_t page_shift_;
  /// vpn -> last-use tick (possibly stale while the front holds the page;
  /// see effective_tick). Hit path is O(1); the LRU victim scan runs on
  /// the (rare) miss path only.
  std::unordered_map<Addr, std::uint64_t> map_;
  std::array<FrontEntry, kFrontSize> front_{};
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace samie::mem
