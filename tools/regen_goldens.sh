#!/usr/bin/env sh
# One-shot golden regeneration for the stats bit-identity tripwire.
#
# Rebuilds tests/golden/stats_mini_suite.csv — the 3-program mini-suite
# under every LSQ kind that CI (stats-identity job) and perf PRs compare
# against byte for byte. Run this ONLY when a PR intentionally changes
# simulated behavior; for pure performance/refactor PRs the suite must
# reproduce the existing golden unchanged. The regenerated file is
# reviewed like code: the diff IS the behavioral change.
#
# Usage: tools/regen_goldens.sh [build-dir]     (default: build)
#
# The command matrix below is the single source of truth; CI's check
# runs the identical loop and compares instead of overwriting.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
sim="$build/samie_sim"

if [ ! -x "$sim" ]; then
  echo "regen_goldens: '$sim' not found or not executable" >&2
  echo "  build it first: cmake -B build -S . && cmake --build build -j --target samie_sim" >&2
  exit 1
fi

out="$repo/tests/golden/stats_mini_suite.csv"
tmp="$out.tmp"
for lsq in conventional arb samie; do
  "$sim" --lsq="$lsq" --insts=20000 --csv gcc ammp mcf
done > "$tmp"
mv "$tmp" "$out"
echo "regen_goldens: wrote $out ($(wc -l < "$out") lines)" >&2
echo "regen_goldens: review the diff — it is the behavioral change" >&2
