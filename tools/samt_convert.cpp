// samt_convert: converts SAMT traces between v1 (flat mmap-able record
// array) and v2 (block-guarded, delta-encoded, indexed) in either
// direction, with integrity verification on both ends.
//
//   samt_convert [options] <in.samt> <out.samt>
//
//   --to=v1|v2         target version (default: the opposite of the
//                      input's version)
//   --block-records=N  records per v2 block (default 4096; v2 output only)
//   --no-verify        skip the post-write re-read of the output
//
// The input is fully decoded through its version's verifying reader
// (v1: header + whole-file FNV-1a checksum; v2: footer, index and every
// block guard), so a damaged input fails the conversion with a typed
// error instead of laundering corruption into a clean-looking output.
// After writing, the output is re-opened and verified the same way and
// its record stream compared byte-for-byte against the input's, so a
// conversion can never silently drop or alter records. Both writers
// publish atomically (tmp + fsync + rename): a failed conversion leaves
// no partial file at the output path.
//
// Exit status: 0 on success, 1 on any error (usage, unreadable or
// damaged input, write failure, post-write verification mismatch).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/trace/trace_io.h"
#include "tools/cli_util.h"

namespace {

using namespace samie;

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "samt_convert: " << what
            << "\nusage: samt_convert [--to=v1|v2] [--block-records=N]"
               " [--no-verify] <in.samt> <out.samt>\n";
  std::exit(1);
}

/// Reads and fully verifies `path` with the reader matching its version.
trace::Trace read_verified(const std::string& path, std::uint32_t& version) {
  const trace::SamtHeader header = trace::read_samt_header(path);
  version = header.version;
  if (header.version == trace::kSamtVersion2) {
    return trace::TraceV2Reader(path).read_all();
  }
  return trace::TraceReader(path).read_all();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t to_version = 0;  // 0: opposite of the input
  std::uint64_t block_records = trace::kDefaultBlockRecords;
  bool verify_output = true;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--to=v1") {
      to_version = trace::kSamtVersion;
    } else if (arg == "--to=v2") {
      to_version = trace::kSamtVersion2;
    } else if (arg.rfind("--to=", 0) == 0) {
      usage_error("unknown --to target '" + arg.substr(5) + "' (v1 or v2)");
    } else if (tools::parse_u64(arg, "--block-records", block_records,
                                [](const std::string& w) { usage_error(w); })) {
      if (block_records == 0 || block_records > (1u << 24)) {
        usage_error("--block-records must be in [1, 2^24]");
      }
    } else if (arg == "--no-verify") {
      verify_output = false;
    } else if (arg.rfind("--", 0) == 0) {
      usage_error("unknown option '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) usage_error("expected exactly <in.samt> <out.samt>");
  const std::string& in_path = paths[0];
  const std::string& out_path = paths[1];
  if (in_path == out_path) {
    usage_error("input and output paths must differ (atomic rename target)");
  }

  try {
    std::uint32_t in_version = 0;
    const trace::Trace t = read_verified(in_path, in_version);
    if (to_version == 0) {
      to_version = in_version == trace::kSamtVersion2 ? trace::kSamtVersion
                                                      : trace::kSamtVersion2;
    }
    const trace::TraceView view{t.ops.data(), t.ops.size()};
    if (to_version == trace::kSamtVersion2) {
      trace::write_samt_v2(out_path, view, t.name, t.seed,
                           static_cast<std::uint32_t>(block_records));
    } else {
      trace::write_samt(out_path, view, t.name, t.seed);
    }

    if (verify_output) {
      std::uint32_t out_version = 0;
      const trace::Trace back = read_verified(out_path, out_version);
      const bool same =
          out_version == to_version && back.name == t.name &&
          back.seed == t.seed && back.ops.size() == t.ops.size() &&
          (t.ops.empty() ||
           std::memcmp(back.ops.data(), t.ops.data(),
                       t.ops.size() * sizeof(trace::MicroOp)) == 0);
      if (!same) {
        std::cerr << "samt_convert: post-write verification mismatch: '"
                  << out_path << "' does not round-trip '" << in_path
                  << "'\n";
        return 1;
      }
    }
    std::cerr << "converted " << in_path << " (v" << in_version << ") -> "
              << out_path << " (v" << to_version << "), " << t.ops.size()
              << " records" << (verify_output ? ", verified" : "") << "\n";
  } catch (const trace::TraceFormatError& e) {
    std::cerr << "samt_convert: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
