// Shared command-line helpers for the tools (samie_sim, perf_report).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

namespace samie::tools {

/// Parses `--key=N` into `out`. Returns false when `arg` is a different
/// option. On a matching key whose value is empty, partially numeric
/// ("--insts=1e5" used to silently parse as 1) or out of range, calls
/// `fail(message)` — which is expected not to return.
template <typename FailFn>
bool parse_u64(const std::string& arg, const char* key, std::uint64_t& out,
               FailFn&& fail) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  const char* digits = arg.c_str() + prefix.size();
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(digits, &end, 10);
  if (end == digits || *end != '\0' || errno == ERANGE) {
    std::forward<FailFn>(fail)("value of " + std::string(key) +
                               " must be an unsigned integer, got '" + digits +
                               "'");
  }
  out = v;
  return true;
}

}  // namespace samie::tools
