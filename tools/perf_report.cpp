// perf_report: the repo's performance-trajectory tool.
//
//   perf_report [options]
//
//   --insts=N       instructions per program (default 200000)
//   --seed=N        workload seed (default 42)
//   --repeats=N     timed simulations per (lsq, program); best wall kept
//                   (default 3)
//   --out=PATH      output file (default BENCH_hotpath.json in the cwd)
//   --programs=a,b  comma-separated SPEC2000 subset (default: whole suite)
//   --lsq=K         restrict to one LSQ (conventional|arb|samie);
//                   default: all three
//   --trace-dir=D   sweep the recorded *.samt traces in D (mmap replay)
//                   instead of generating synthetic workloads; replays
//                   each trace in full (--insts/--seed are ignored)
//   --lanes=K       additionally time one whole-suite *sweep* per LSQ
//                   through the per-job worker pool, through the
//                   batched-lane executor with K lanes at one shard,
//                   and through the sharded lane executor (best of
//                   --repeats each; schema-v2 pool_sweep/lane_sweep/
//                   sharded_sweep fields). 0 (default) disables the
//                   sweep timing
//   --lane-shards=T worker threads for the sharded sweep measurement
//                   (requires --lanes; default: host parallelism)
//   --lane-turn=N   stepped cycles per lane turn for both lane sweeps
//                   (requires --lanes; default:
//                   LaneEngine::kDefaultCyclesPerTurn)
//   --no-skip       measure the always-step cycle loop (disables the
//                   quiescent-cycle fast-forward; statistics identical,
//                   skip_ratio reads 0)
//   --resume=FILE   journal each finished (lsq, program) measurement to
//                   FILE (crash-safe) and, when FILE already exists for
//                   the same configuration, load its measurements instead
//                   of re-running them
//
// Exit status: 0 on a clean run, 2 when some measurements failed (the
// per-measurement errors go to stderr and the JSON's "failures" array),
// 1 on usage or fatal errors.
//
// Runs the SPEC2000 suite under the requested LSQ organizations on a
// single thread (deterministic job order, stable timings) and writes
// BENCH_hotpath.json: simulated-cycles/second, per-program wall time, and
// peak RSS, plus the full deterministic statistics of every run so two
// reports can be diffed for bit-identical simulation results. Schema:
// docs/BENCH_hotpath.md.
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/sim/perf_harness.h"
#include "src/trace/spec2000.h"
#include "tools/cli_util.h"

namespace {

using namespace samie;

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "perf_report: " << what
            << " (see the header of tools/perf_report.cpp)\n";
  std::exit(1);
}

bool parse_u64(const std::string& arg, const char* key, std::uint64_t& out) {
  return tools::parse_u64(arg, key, out,
                          [](const std::string& what) { usage_error(what); });
}

}  // namespace

int main(int argc, char** argv) {
  sim::HotpathOptions opt;
  std::string out_path = "BENCH_hotpath.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t v = 0;
    if (parse_u64(arg, "--insts", v)) {
      opt.instructions = v;
    } else if (parse_u64(arg, "--seed", v)) {
      opt.seed = v;
    } else if (parse_u64(arg, "--repeats", v)) {
      opt.repeats = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--lanes", v)) {
      opt.lanes = static_cast<unsigned>(v);
    } else if (parse_u64(arg, "--lane-shards", v)) {
      if (v == 0) usage_error("--lane-shards must be at least 1");
      opt.lane_shards = static_cast<unsigned>(v);
    } else if (parse_u64(arg, "--lane-turn", v)) {
      if (v == 0) usage_error("--lane-turn must be at least 1");
      opt.lane_turn = v;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--programs=", 0) == 0) {
      std::stringstream ss(arg.substr(11));
      std::string p;
      while (std::getline(ss, p, ',')) {
        if (!p.empty()) opt.programs.push_back(p);
      }
    } else if (arg.rfind("--trace-dir=", 0) == 0) {
      opt.trace_dir = arg.substr(12);
    } else if (arg.rfind("--resume=", 0) == 0) {
      opt.resume_path = arg.substr(9);
    } else if (arg == "--no-skip") {
      opt.always_step = true;
    } else if (arg.rfind("--lsq=", 0) == 0) {
      const std::string k = arg.substr(6);
      if (k == "conventional") opt.lsqs = {sim::LsqChoice::kConventional};
      else if (k == "arb") opt.lsqs = {sim::LsqChoice::kArb};
      else if (k == "samie") opt.lsqs = {sim::LsqChoice::kSamie};
      else usage_error("unknown LSQ kind '" + k + "'");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header of tools/perf_report.cpp for options\n";
      return 0;
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (!opt.trace_dir.empty() && !opt.programs.empty()) {
    usage_error("--trace-dir and --programs are mutually exclusive");
  }
  if (opt.lanes == 0 && opt.lane_shards != 0) {
    usage_error("--lane-shards requires --lanes");
  }
  if (opt.lanes == 0 && opt.lane_turn != 0) {
    usage_error("--lane-turn requires --lanes");
  }
  for (const auto& p : opt.programs) {
    try {
      (void)trace::spec2000_profile(p);
    } catch (const std::out_of_range&) {
      usage_error("unknown program '" + p + "'");
    }
  }

  sim::HotpathReport report;
  try {
    report = sim::run_hotpath_measurement(opt);
  } catch (const std::exception& e) {
    std::cerr << "perf_report: " << e.what() << "\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) usage_error("cannot open '" + out_path + "' for writing");
  sim::write_hotpath_json(out, report);

  for (const auto& lr : report.lsqs) {
    std::cout << sim::lsq_choice_name(lr.lsq) << ": "
              << lr.total_sim_cycles << " sim cycles in "
              << lr.total_wall_seconds << " s  ->  "
              << static_cast<std::uint64_t>(lr.sim_cycles_per_second)
              << " cycles/s (";
    if (report.no_skip) {
      // Always-step run: the fast-forward was disabled, so a skip
      // percentage would state a tautological 0 — name the mode instead.
      std::cout << "skip disabled";
    } else {
      const double skip = 100.0 * sim::skip_fraction(lr.total_skipped_cycles,
                                                     lr.total_sim_cycles);
      std::cout << skip << "% quiescent-skipped";
    }
    std::cout << ", peak RSS " << lr.peak_rss_kb << " kB)\n";
    if (report.lanes != 0) {
      std::cout << sim::lsq_choice_name(lr.lsq) << " sweep: pool "
                << lr.pool_sweep_wall_seconds << " s, " << report.lanes
                << " lanes " << lr.lane_sweep_wall_seconds << " s, "
                << report.lane_shards << " shard"
                << (report.lane_shards == 1 ? "" : "s") << " "
                << lr.sharded_sweep_wall_seconds << " s\n";
    }
  }
  if (report.resumed != 0) {
    std::cout << report.resumed << " measurement"
              << (report.resumed == 1 ? "" : "s") << " resumed from "
              << opt.resume_path << "\n";
  }
  std::cout << "wrote " << out_path << "\n";
  for (const auto& f : report.failures) {
    std::cerr << "perf_report: " << f << "\n";
  }
  return report.failures.empty() ? 0 : 2;
}
