// samie_sim: the command-line driver for the simulator.
//
//   samie_sim [options] [program ...]
//
//   --lsq=<conventional|unbounded|arb|samie>   queue under test (default samie)
//   --insts=N          instructions per program        (default 200000)
//   --seed=N           workload seed                   (default 42)
//   --banks=N          SAMIE DistribLSQ banks          (default 64)
//   --entries=N        SAMIE entries per bank          (default 2)
//   --slots=N          SAMIE slots per entry           (default 8)
//   --shared=N         SAMIE SharedLSQ entries         (default 8)
//   --addrbuf=N        SAMIE AddrBuffer slots          (default 64)
//   --unbounded-shared let the SharedLSQ grow freely   (Figure 3 mode)
//   --arb-banks=N --arb-rows=N --arb-inflight=N        ARB geometry
//   --conv-entries=N   conventional LSQ entries        (default 128)
//   --fast-way-known   exploit the lower way-known L1D latency (§3.6)
//   --derived-energy   account with the analytical surrogate, not the
//                      paper's published constants
//   --csv              machine-readable output (one row per program)
//   --threads=N        parallel jobs (default: all hardware threads)
//
// With no programs, the whole 26-program SPEC2000 suite runs.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/trace/spec2000.h"

namespace {

using namespace samie;

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "samie_sim: " << what << " (see the header of tools/samie_sim.cpp)\n";
  std::exit(2);
}

bool parse_u64(const std::string& arg, const char* key, std::uint64_t& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
  cfg.instructions = 200'000;
  bool csv = false;
  unsigned threads = 0;
  std::vector<std::string> programs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t v = 0;
    if (arg.rfind("--lsq=", 0) == 0) {
      const std::string k = arg.substr(6);
      if (k == "conventional") cfg.lsq = sim::LsqChoice::kConventional;
      else if (k == "unbounded") cfg.lsq = sim::LsqChoice::kUnbounded;
      else if (k == "arb") cfg.lsq = sim::LsqChoice::kArb;
      else if (k == "samie") cfg.lsq = sim::LsqChoice::kSamie;
      else usage_error("unknown LSQ kind '" + k + "'");
    } else if (parse_u64(arg, "--insts", v)) {
      cfg.instructions = v;
    } else if (parse_u64(arg, "--seed", v)) {
      cfg.seed = v;
    } else if (parse_u64(arg, "--banks", v)) {
      cfg.samie.banks = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--entries", v)) {
      cfg.samie.entries_per_bank = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--slots", v)) {
      cfg.samie.slots_per_entry = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--shared", v)) {
      cfg.samie.shared_entries = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--addrbuf", v)) {
      cfg.samie.addr_buffer_slots = static_cast<std::uint32_t>(v);
    } else if (arg == "--unbounded-shared") {
      cfg.samie.unbounded_shared = true;
    } else if (parse_u64(arg, "--arb-banks", v)) {
      cfg.arb.banks = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--arb-rows", v)) {
      cfg.arb.rows_per_bank = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--arb-inflight", v)) {
      cfg.arb.max_inflight = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--conv-entries", v)) {
      cfg.conventional.entries = static_cast<std::uint32_t>(v);
    } else if (arg == "--fast-way-known") {
      cfg.core.exploit_known_line_latency = true;
    } else if (arg == "--derived-energy") {
      cfg.paper_energy_constants = false;
    } else if (arg == "--csv") {
      csv = true;
    } else if (parse_u64(arg, "--threads", v)) {
      threads = static_cast<unsigned>(v);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header of tools/samie_sim.cpp for options\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      usage_error("unknown option '" + arg + "'");
    } else {
      programs.push_back(arg);
    }
  }
  if (programs.empty()) programs = trace::spec2000_names();
  for (const auto& p : programs) {
    try {
      (void)trace::spec2000_profile(p);
    } catch (const std::out_of_range&) {
      usage_error("unknown program '" + p + "'");
    }
  }

  std::vector<sim::Job> jobs;
  jobs.reserve(programs.size());
  for (const auto& p : programs) {
    jobs.push_back(sim::Job{p, cfg, sim::lsq_choice_name(cfg.lsq)});
  }
  const auto results = sim::run_jobs(jobs, threads);

  if (csv) {
    std::cout << "program,lsq,instructions,cycles,ipc,mispredict_squashes,"
                 "deadlock_flushes,forwarded_loads,lsq_energy_nj,"
                 "lsq_distrib_nj,lsq_shared_nj,lsq_addrbuf_nj,lsq_bus_nj,"
                 "dcache_energy_nj,dtlb_energy_nj,dcache_way_known,"
                 "dcache_full,dtlb_cached,dtlb_accesses,shared_occ_mean,"
                 "buffer_busy_frac,area_total,value_mismatches\n";
    for (const auto& r : results) {
      const auto& s = r.result;
      std::cout << r.job.program << ',' << r.job.tag << ','
                << s.core.committed << ',' << s.core.cycles << ','
                << s.core.ipc << ',' << s.core.mispredict_squashes << ','
                << s.core.deadlock_flushes << ',' << s.core.forwarded_loads
                << ',' << s.lsq_energy_nj << ',' << s.lsq_distrib_nj << ','
                << s.lsq_shared_nj << ',' << s.lsq_addrbuf_nj << ','
                << s.lsq_bus_nj << ',' << s.dcache_energy_nj << ','
                << s.dtlb_energy_nj << ',' << s.core.dcache_way_known << ','
                << s.core.dcache_full << ',' << s.core.dtlb_cached << ','
                << s.core.dtlb_accesses << ',' << s.shared_occupancy_mean
                << ',' << s.buffer_nonempty_frac << ',' << s.area_total << ','
                << s.core.value_mismatches << '\n';
    }
    return 0;
  }

  Table t({"program", "IPC", "LSQ uJ", "Dcache uJ", "DTLB uJ", "deadlk/Mcyc",
           "fwd loads", "mismatch"});
  for (const auto& r : results) {
    const auto& s = r.result;
    t.add_row({r.job.program, Table::num(s.core.ipc),
               Table::num(s.lsq_energy_nj / 1e3),
               Table::num(s.dcache_energy_nj / 1e3),
               Table::num(s.dtlb_energy_nj / 1e3),
               Table::num(s.deadlocks_per_mcycle(), 1),
               std::to_string(s.core.forwarded_loads),
               std::to_string(s.core.value_mismatches)});
  }
  std::cout << "LSQ: " << sim::lsq_choice_name(cfg.lsq) << ", "
            << cfg.instructions << " instructions/program\n";
  t.print(std::cout);
  return 0;
}
