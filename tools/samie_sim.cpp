// samie_sim: the command-line driver for the simulator.
//
//   samie_sim [options] [program ...]
//
//   --lsq=<conventional|unbounded|arb|samie>   queue under test (default samie)
//   --insts=N          instructions per program        (default 200000)
//   --seed=N           workload seed                   (default 42)
//   --banks=N          SAMIE DistribLSQ banks          (default 64)
//   --entries=N        SAMIE entries per bank          (default 2)
//   --slots=N          SAMIE slots per entry           (default 8)
//   --shared=N         SAMIE SharedLSQ entries         (default 8)
//   --addrbuf=N        SAMIE AddrBuffer slots          (default 64)
//   --unbounded-shared let the SharedLSQ grow freely   (Figure 3 mode)
//   --arb-banks=N --arb-rows=N --arb-inflight=N        ARB geometry
//   --conv-entries=N   conventional LSQ entries        (default 128)
//   --fast-way-known   exploit the lower way-known L1D latency (§3.6)
//   --no-skip          disable the event-driven quiescent-cycle
//                      fast-forward and walk every cycle (differential
//                      escape hatch; statistics are identical either way)
//   --derived-energy   account with the analytical surrogate, not the
//                      paper's published constants
//   --csv              machine-readable output (one row per program)
//   --threads=N        parallel jobs (default: all hardware threads)
//   --lanes=K          batched-lane executor: run the sweep as
//                      interleaved machines — up to K per shard —
//                      stepped earliest-wake-first by per-shard
//                      LaneEngines (docs/ENERGY_LEDGER.md). Results and
//                      the CSV are byte-identical to the threaded sweep
//   --lane-shards=T    lane mode only: worker shards, each a private
//                      LaneEngine of up to K lanes pulling from the
//                      shared job queue (default: all hardware
//                      threads). Any T emits the identical CSV
//   --lane-turn=N      lane mode only: stepped cycles per lane turn
//                      (default 4096). Any N >= 1 is outcome-identical;
//                      this is a scheduling-granularity knob
//
// Sweep robustness (docs/SWEEP_ROBUSTNESS.md):
//   --isolate[=N]          process-isolated executor: each job runs in a
//                          forked child (up to N alive at once; default:
//                          all hardware threads) so a job that crashes,
//                          OOMs or spins cannot take the sweep down.
//                          Results are byte-identical to the other
//                          executors. Mutually exclusive with --lanes
//   --job-mem-mb=N         RLIMIT_AS jail per child, MiB (isolation only)
//   --job-cpu-s=N          RLIMIT_CPU backstop per child, seconds
//   --kill-grace-ms=N      grace between the deadline SIGTERM and the
//                          SIGKILL hard kill (default 500)
//   --retries=N            attempts per transiently-failing job (default 3)
//   --job-deadline-ms=N    per-job wall-clock deadline; an overrunning job
//                          is cancelled cooperatively and reported timed-out
//   --max-failures=N       drain the sweep after N failed/timed-out jobs
//                          (remaining jobs report skipped; default: run all)
//   --checkpoint=FILE      journal each completed job to FILE (crash-safe)
//   --resume=FILE          resume an interrupted sweep from FILE: finished
//                          jobs are loaded bit-identically, the rest run
//   --no-verify-checksum   skip the SAMT FNV-1a checksum pass on replay
//                          (for re-opening an already-verified trace)
//   --inject-fault=J:A:KIND[:ARG]  test/CI hook: inject a fault at job J
//                          (0-based) attempt A (1-based); KIND is flaky
//                          (transient throw), fail (deterministic throw),
//                          delay (sleep ARG ms first) or wake (spurious
//                          supervisor wake-up). Under --isolate only:
//                          crash (SIGSEGV in the child), oom (allocation
//                          bomb into the --job-mem-mb jail), spin (busy
//                          loop ignoring the cancel token) and torn-frame
//                          (truncated result frame). I/O kinds (armed on
//                          the job's trace path, consumed by the next
//                          open): short-read (hide the last ARG bytes;
//                          0 = 64) and bit-flip (flip one payload bit of
//                          v2 block ARG in memory). Import-only kinds —
//                          J indexes the imported file: enospc-on-import
//                          (finalize fails as if the disk filled) and
//                          torn-import (importer dies mid-block, torn
//                          .tmp kept). Repeatable.
//
// Trace modes (SAMT format: docs/TRACE_FORMAT.md):
//   --record-trace=DIR   additionally write each program's generated
//                        trace to DIR/<program>.samt (DIR is created);
//                        combined with --import-trace this converts the
//                        imported text traces to SAMT
//   --trace-format=V     SAMT version written by --record-trace: v1
//                        (default; flat mmap-able records) or v2
//                        (block-guarded + indexed; shardable)
//   --replay-trace=PATH  replay a recorded .samt file — or every .samt
//                        in a directory — (v1: mmap zero-copy; v2:
//                        block-decoded). Replays the full trace unless
//                        --insts is given
//   --trace-shards=N     split each replayed v2 trace into N
//                        block-aligned shard jobs and emit one
//                        reconciled row per trace (only when every
//                        shard completed — never a partial row).
//                        Requires --replay-trace with v2 traces
//   --shard-warmup=W     warm-up records each shard replays ahead of
//                        its measured range, excluded from its stats;
//                        "full" (default) replays the whole prefix —
//                        the exact mode, where reconciled integer
//                        stats and energies match the unsharded run
//                        bit for bit (docs/SWEEP_ROBUSTNESS.md)
//   --import-trace=PATH  import a plain-text trace file (or directory of
//                        .txt/.trace files; one op per line) and run it
//
// With no programs, the whole 26-program SPEC2000 suite runs.
//
// Exit status: 0 when every job completed, 3 when the sweep finished
// but at least one job crashed its isolated child, exceeded its
// resource jail, or hit trace damage (outcome=trace-damaged with
// damage=/block=/offset= fields in the per-job report), 2 when the
// sweep was partial for any other reason (jobs failed, timed out or
// were skipped — the failure report goes to stderr, completed rows
// still print), 1 on usage or fatal errors (bad flags, unreadable
// checkpoint, import failure).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/checkpoint.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/sim/sweep_scheduler.h"
#include "src/sim/trace_shard.h"
#include "src/trace/spec2000.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "tools/cli_util.h"

namespace {

using namespace samie;

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "samie_sim: " << what << " (see the header of tools/samie_sim.cpp)\n";
  std::exit(1);
}

bool parse_u64(const std::string& arg, const char* key, std::uint64_t& out) {
  return tools::parse_u64(arg, key, out,
                          [](const std::string& what) { usage_error(what); });
}

/// Parses --inject-fault=J:A:KIND[:MS].
sim::SweepFault parse_fault(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t at = 0;
  while (true) {
    const std::size_t colon = spec.find(':', at);
    parts.push_back(spec.substr(at, colon - at));
    if (colon == std::string::npos) break;
    at = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) {
    usage_error("--inject-fault wants J:A:KIND[:MS], got '" + spec + "'");
  }
  sim::SweepFault f;
  char* end = nullptr;
  f.job = std::strtoull(parts[0].c_str(), &end, 10);
  if (end != parts[0].c_str() + parts[0].size()) {
    usage_error("bad job index in --inject-fault '" + spec + "'");
  }
  f.attempt = static_cast<std::uint32_t>(std::strtoul(parts[1].c_str(), &end, 10));
  if (end != parts[1].c_str() + parts[1].size() || f.attempt == 0) {
    usage_error("bad (1-based) attempt in --inject-fault '" + spec + "'");
  }
  const std::string& kind = parts[2];
  if (kind == "flaky") f.kind = sim::SweepFault::Kind::kThrowTransient;
  else if (kind == "fail") f.kind = sim::SweepFault::Kind::kThrowDeterministic;
  else if (kind == "delay") f.kind = sim::SweepFault::Kind::kDelay;
  else if (kind == "wake") f.kind = sim::SweepFault::Kind::kSpuriousWake;
  else if (kind == "crash") f.kind = sim::SweepFault::Kind::kCrash;
  else if (kind == "oom") f.kind = sim::SweepFault::Kind::kOom;
  else if (kind == "spin") f.kind = sim::SweepFault::Kind::kSpin;
  else if (kind == "torn-frame") f.kind = sim::SweepFault::Kind::kTornFrame;
  else if (kind == "short-read") f.kind = sim::SweepFault::Kind::kShortRead;
  else if (kind == "bit-flip") f.kind = sim::SweepFault::Kind::kBitFlipBlock;
  else if (kind == "enospc-on-import")
    f.kind = sim::SweepFault::Kind::kEnospcOnImport;
  else if (kind == "torn-import") f.kind = sim::SweepFault::Kind::kTornImport;
  else usage_error("unknown fault kind '" + kind + "' in --inject-fault");
  if (parts.size() == 4) {
    const std::uint64_t arg = std::strtoull(parts[3].c_str(), &end, 10);
    if (end != parts[3].c_str() + parts[3].size()) {
      usage_error("bad argument in --inject-fault '" + spec + "'");
    }
    if (sim::SweepFault::is_io_fault(f.kind)) {
      f.param = arg;
    } else {
      f.delay = std::chrono::milliseconds(arg);
    }
  }
  return f;
}

/// Arms an import-only I/O fault on the importer's *final* output path
/// (the writer checks the fault map under the final name, not the .tmp).
void arm_import_fault(const std::string& out_path, const sim::SweepFault& f) {
  trace::IoFault io;
  io.param = f.param;
  io.kind = f.kind == sim::SweepFault::Kind::kEnospcOnImport
                ? trace::IoFault::Kind::kEnospcOnImport
                : trace::IoFault::Kind::kTornImport;
  trace::set_io_fault(out_path, io);
}

/// Collects PATH itself (a file) or the files under it (a directory)
/// whose extension is in `exts`, sorted by name.
std::vector<std::string> collect_files(const std::string& path,
                                       std::initializer_list<const char*> exts) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      for (const char* e : exts) {
        if (ext == e) {
          out.push_back(entry.path().string());
          break;
        }
      }
    }
    std::sort(out.begin(), out.end());
    if (out.empty()) usage_error("no matching trace files under '" + path + "'");
  } else {
    out.push_back(path);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
  cfg.instructions = 200'000;
  bool csv = false;
  bool insts_given = false;
  bool record_v2 = false;
  std::uint64_t trace_shards = 0;
  std::uint64_t shard_warmup = UINT64_MAX;  // "full": the exact mode
  bool shard_warmup_given = false;
  std::string record_dir;
  std::string replay_path;
  std::string import_path;
  std::vector<std::string> programs;
  sim::SweepOptions sweep;
  sim::SweepFaultPlan fault_plan;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t v = 0;
    if (arg.rfind("--record-trace=", 0) == 0) {
      record_dir = arg.substr(15);
    } else if (arg.rfind("--replay-trace=", 0) == 0) {
      replay_path = arg.substr(15);
    } else if (arg.rfind("--import-trace=", 0) == 0) {
      import_path = arg.substr(15);
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      sweep.checkpoint_path = arg.substr(13);
    } else if (arg.rfind("--resume=", 0) == 0) {
      sweep.checkpoint_path = arg.substr(9);
      sweep.resume = true;
    } else if (arg.rfind("--inject-fault=", 0) == 0) {
      fault_plan.faults.push_back(parse_fault(arg.substr(15)));
    } else if (arg == "--no-verify-checksum") {
      cfg.verify_trace_checksum = false;
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      const std::string fmt = arg.substr(15);
      if (fmt == "v1") record_v2 = false;
      else if (fmt == "v2") record_v2 = true;
      else usage_error("unknown --trace-format '" + fmt + "' (v1 or v2)");
    } else if (parse_u64(arg, "--trace-shards", v)) {
      if (v == 0) usage_error("--trace-shards must be at least 1");
      trace_shards = v;
    } else if (arg == "--shard-warmup=full") {
      shard_warmup = UINT64_MAX;
      shard_warmup_given = true;
    } else if (parse_u64(arg, "--shard-warmup", v)) {
      shard_warmup = v;
      shard_warmup_given = true;
    } else if (parse_u64(arg, "--retries", v)) {
      if (v == 0) usage_error("--retries must be at least 1");
      sweep.retry.max_attempts = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--job-deadline-ms", v)) {
      sweep.job_deadline = std::chrono::milliseconds(v);
    } else if (parse_u64(arg, "--max-failures", v)) {
      sweep.max_failures = static_cast<std::size_t>(v);
    } else if (arg.rfind("--lsq=", 0) == 0) {
      const std::string k = arg.substr(6);
      if (k == "conventional") cfg.lsq = sim::LsqChoice::kConventional;
      else if (k == "unbounded") cfg.lsq = sim::LsqChoice::kUnbounded;
      else if (k == "arb") cfg.lsq = sim::LsqChoice::kArb;
      else if (k == "samie") cfg.lsq = sim::LsqChoice::kSamie;
      else usage_error("unknown LSQ kind '" + k + "'");
    } else if (parse_u64(arg, "--insts", v)) {
      cfg.instructions = v;
      insts_given = true;
    } else if (parse_u64(arg, "--seed", v)) {
      cfg.seed = v;
    } else if (parse_u64(arg, "--banks", v)) {
      cfg.samie.banks = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--entries", v)) {
      cfg.samie.entries_per_bank = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--slots", v)) {
      cfg.samie.slots_per_entry = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--shared", v)) {
      cfg.samie.shared_entries = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--addrbuf", v)) {
      cfg.samie.addr_buffer_slots = static_cast<std::uint32_t>(v);
    } else if (arg == "--unbounded-shared") {
      cfg.samie.unbounded_shared = true;
    } else if (parse_u64(arg, "--arb-banks", v)) {
      cfg.arb.banks = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--arb-rows", v)) {
      cfg.arb.rows_per_bank = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--arb-inflight", v)) {
      cfg.arb.max_inflight = static_cast<std::uint32_t>(v);
    } else if (parse_u64(arg, "--conv-entries", v)) {
      cfg.conventional.entries = static_cast<std::uint32_t>(v);
    } else if (arg == "--fast-way-known") {
      cfg.core.exploit_known_line_latency = true;
    } else if (arg == "--no-skip") {
      cfg.core.always_step = true;
    } else if (arg == "--derived-energy") {
      cfg.paper_energy_constants = false;
    } else if (arg == "--csv") {
      csv = true;
    } else if (parse_u64(arg, "--threads", v)) {
      sweep.threads = static_cast<unsigned>(v);
    } else if (parse_u64(arg, "--lanes", v)) {
      if (v == 0) usage_error("--lanes must be at least 1");
      sweep.lanes = static_cast<unsigned>(v);
    } else if (parse_u64(arg, "--lane-shards", v)) {
      if (v == 0) usage_error("--lane-shards must be at least 1");
      sweep.lane_shards = static_cast<unsigned>(v);
    } else if (parse_u64(arg, "--lane-turn", v)) {
      if (v == 0) usage_error("--lane-turn must be at least 1");
      sweep.lane_turn = v;
    } else if (arg == "--isolate") {
      sweep.isolate_procs = sim::bench_threads();
    } else if (parse_u64(arg, "--isolate", v)) {
      if (v == 0) usage_error("--isolate must be at least 1");
      sweep.isolate_procs = static_cast<unsigned>(v);
    } else if (parse_u64(arg, "--job-mem-mb", v)) {
      sweep.job_mem_mb = v;
    } else if (parse_u64(arg, "--job-cpu-s", v)) {
      sweep.job_cpu_s = v;
    } else if (parse_u64(arg, "--kill-grace-ms", v)) {
      sweep.kill_grace = std::chrono::milliseconds(v);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header of tools/samie_sim.cpp for options\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      usage_error("unknown option '" + arg + "'");
    } else {
      programs.push_back(arg);
    }
  }
  if (!replay_path.empty() && !import_path.empty()) {
    usage_error("--replay-trace and --import-trace are mutually exclusive");
  }
  if (!replay_path.empty() && !record_dir.empty()) {
    usage_error("--record-trace cannot be combined with --replay-trace "
                "(the trace is already recorded)");
  }
  if ((!replay_path.empty() || !import_path.empty()) && !programs.empty()) {
    usage_error("program names cannot be combined with trace replay/import");
  }
  if (!import_path.empty() && !sweep.checkpoint_path.empty()) {
    usage_error("--checkpoint/--resume apply to sweep modes, not --import-trace");
  }
  if (sweep.isolate_procs != 0 && sweep.lanes != 0) {
    usage_error("--isolate and --lanes are mutually exclusive executors");
  }
  if (sweep.lane_shards != 0 && sweep.lanes == 0) {
    usage_error("--lane-shards requires --lanes");
  }
  if (sweep.lane_turn != 0 && sweep.lanes == 0) {
    usage_error("--lane-turn requires --lanes");
  }
  if (sweep.isolate_procs != 0 && !import_path.empty()) {
    usage_error("--isolate applies to sweep modes, not --import-trace");
  }
  if (trace_shards != 0 && replay_path.empty()) {
    usage_error("--trace-shards requires --replay-trace (v2 traces)");
  }
  if (shard_warmup_given && trace_shards == 0) {
    usage_error("--shard-warmup requires --trace-shards");
  }
  if (record_v2 && record_dir.empty()) {
    usage_error("--trace-format applies to --record-trace");
  }
  if (!record_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(record_dir, ec);
    if (ec) usage_error("cannot create '" + record_dir + "': " + ec.message());
  }
  if (!fault_plan.faults.empty()) sweep.faults = &fault_plan;

  std::vector<sim::JobResult> results;
  sim::SweepReport report;
  bool ran_sweep = false;
  /// Sharded replay bookkeeping: one group per replayed trace, covering
  /// `count` consecutive shard jobs starting at job index `begin`.
  struct ShardGroup {
    sim::Job base;
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::vector<ShardGroup> shard_groups;
  const std::string tag = sim::lsq_choice_name(cfg.lsq);

  try {
  if (!replay_path.empty()) {
    // Replay recorded SAMT traces through the supervised sweep: workers
    // sweeping one file share a single mmap via the trace cache.
    std::vector<sim::Job> jobs;
    for (const auto& file : collect_files(replay_path, {".samt"})) {
      const trace::SamtHeader header = trace::read_samt_header(file);
      sim::Job job;
      job.program = header.name[0] != '\0'
                        ? std::string(header.name,
                                      ::strnlen(header.name, sizeof header.name))
                        : std::filesystem::path(file).stem().string();
      job.config = cfg;
      job.config.trace_path = file;
      if (!insts_given) job.config.instructions = header.count;
      job.tag = tag;
      if (trace_shards != 0) {
        // Block-aligned shard jobs; the reconciled row is assembled
        // after the sweep, and only when every shard completed.
        ShardGroup g;
        g.base = job;
        g.begin = jobs.size();
        for (auto& sj : sim::make_trace_shard_jobs(
                 job, static_cast<std::uint32_t>(trace_shards), shard_warmup)) {
          jobs.push_back(std::move(sj.job));
        }
        g.count = jobs.size() - g.begin;
        shard_groups.push_back(std::move(g));
      } else {
        jobs.push_back(std::move(job));
      }
    }
    report = sim::run_sweep(jobs, sweep);
    ran_sweep = true;
  } else if (!import_path.empty()) {
    // Text import: materialize each trace once, optionally convert it to
    // SAMT, and run it in place. Fail-fast: a malformed text trace is a
    // fatal (exit 1) error, not a sweep outcome.
    std::uint64_t file_idx = 0;
    for (const auto& file : collect_files(import_path, {".txt", ".trace"})) {
      const trace::TraceSource src = trace::TraceSource::import_text(file);
      if (!record_dir.empty()) {
        const auto out = std::filesystem::path(record_dir) /
                         (std::filesystem::path(file).stem().string() + ".samt");
        // Import-only injected faults target this file by index; arm
        // them on the *final* path — the writer consumes the fault at
        // finalize time keyed by the name it renames into.
        for (const sim::SweepFault& f : fault_plan.faults) {
          if (f.job == file_idx && sim::SweepFault::import_only(f.kind)) {
            arm_import_fault(out.string(), f);
          }
        }
        if (record_v2) {
          trace::write_samt_v2(out.string(), src.view(), src.name(), src.seed());
        } else {
          trace::write_samt(out.string(), src.view(), src.name(), src.seed());
        }
        std::cerr << "recorded " << out.string() << " (" << src.size()
                  << " ops)\n";
      }
      ++file_idx;
      sim::SimConfig run_cfg = cfg;
      if (!insts_given) run_cfg.instructions = src.size();
      sim::JobResult jr;
      jr.job = sim::Job{std::filesystem::path(file).stem().string(), run_cfg, tag};
      jr.result = sim::run_simulation(run_cfg, src.view());
      results.push_back(std::move(jr));
    }
  } else {
    if (programs.empty()) programs = trace::spec2000_names();
    for (const auto& p : programs) {
      try {
        (void)trace::spec2000_profile(p);
      } catch (const std::out_of_range&) {
        usage_error("unknown program '" + p + "'");
      }
    }
    if (!record_dir.empty()) {
      // Record mode: generate and write each trace, then run the suite
      // through the normal generated path (the parallel pool's trace
      // cache regenerates the identical traces) — replaying the files
      // must be bit-identical to these results, and the CI smoke step
      // asserts exactly that.
      for (const auto& p : programs) {
        const trace::TraceSource src = trace::TraceSource::generate(
            trace::spec2000_profile(p), cfg.seed, cfg.instructions);
        const auto out = std::filesystem::path(record_dir) / (p + ".samt");
        if (record_v2) {
          trace::write_samt_v2(out.string(), src.view(), p, cfg.seed);
        } else {
          trace::write_samt(out.string(), src.view(), p, cfg.seed);
        }
        std::cerr << "recorded " << out.string() << " (" << src.size()
                  << " ops)\n";
      }
    }
    std::vector<sim::Job> jobs;
    jobs.reserve(programs.size());
    for (const auto& p : programs) {
      jobs.push_back(sim::Job{p, cfg, tag});
    }
    report = sim::run_sweep(jobs, sweep);
    ran_sweep = true;
  }
  } catch (const sim::CheckpointError& e) {
    std::cerr << "samie_sim: " << e.what() << "\n";
    return 1;
  } catch (const trace::TraceFormatError& e) {
    std::cerr << "samie_sim: " << e.what() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    // run_sweep's pre-flight validation (e.g. an isolation-only fault
    // kind without --isolate, or an oom fault without --job-mem-mb).
    std::cerr << "samie_sim: " << e.what() << "\n";
    return 1;
  }

  if (ran_sweep) {
    if (!shard_groups.empty()) {
      // Sharded replay: per-shard rows are internal. Emit one
      // reconciled row per trace, and only when every one of its
      // shards completed — a trace with a damaged/failed shard gets
      // no row at all, never a partial one.
      for (const ShardGroup& g : shard_groups) {
        std::vector<sim::SimResult> parts;
        parts.reserve(g.count);
        bool all = g.count != 0;
        for (std::size_t i = 0; i < g.count && all; ++i) {
          const sim::SweepJobResult& jr = report.jobs[g.begin + i];
          if (jr.completed()) parts.push_back(jr.result);
          else all = false;
        }
        if (all) {
          results.push_back(sim::JobResult{
              g.base, sim::merge_shard_results(parts, g.base.config)});
        }
      }
    } else {
      // Completed jobs only, in job order: a failed/timed-out/skipped
      // job never fabricates an output row.
      for (sim::SweepJobResult& jr : report.jobs) {
        if (jr.completed()) {
          results.push_back(sim::JobResult{std::move(jr.job), jr.result});
        }
      }
    }
    if (!report.all_completed() || report.resumed != 0 ||
        report.checkpoint_lines_ignored != 0) {
      sim::print_failure_report(std::cerr, report);
    }
  }

  if (csv) {
    std::cout << "program,lsq,instructions,cycles,ipc,mispredict_squashes,"
                 "deadlock_flushes,forwarded_loads,lsq_energy_nj,"
                 "lsq_distrib_nj,lsq_shared_nj,lsq_addrbuf_nj,lsq_bus_nj,"
                 "dcache_energy_nj,dtlb_energy_nj,dcache_way_known,"
                 "dcache_full,dtlb_cached,dtlb_accesses,shared_occ_mean,"
                 "buffer_busy_frac,area_total,value_mismatches\n";
    for (const auto& r : results) {
      const auto& s = r.result;
      std::cout << r.job.program << ',' << r.job.tag << ','
                << s.core.committed << ',' << s.core.cycles << ','
                << s.core.ipc << ',' << s.core.mispredict_squashes << ','
                << s.core.deadlock_flushes << ',' << s.core.forwarded_loads
                << ',' << s.lsq_energy_nj << ',' << s.lsq_distrib_nj << ','
                << s.lsq_shared_nj << ',' << s.lsq_addrbuf_nj << ','
                << s.lsq_bus_nj << ',' << s.dcache_energy_nj << ','
                << s.dtlb_energy_nj << ',' << s.core.dcache_way_known << ','
                << s.core.dcache_full << ',' << s.core.dtlb_cached << ','
                << s.core.dtlb_accesses << ',' << s.shared_occupancy_mean
                << ',' << s.buffer_nonempty_frac << ',' << s.area_total << ','
                << s.core.value_mismatches << '\n';
    }
    return ran_sweep ? sim::sweep_exit_code(report) : 0;
  }

  Table t({"program", "IPC", "LSQ uJ", "Dcache uJ", "DTLB uJ", "deadlk/Mcyc",
           "fwd loads", "mismatch"});
  for (const auto& r : results) {
    const auto& s = r.result;
    t.add_row({r.job.program, Table::num(s.core.ipc),
               Table::num(s.lsq_energy_nj / 1e3),
               Table::num(s.dcache_energy_nj / 1e3),
               Table::num(s.dtlb_energy_nj / 1e3),
               Table::num(s.deadlocks_per_mcycle(), 1),
               std::to_string(s.core.forwarded_loads),
               std::to_string(s.core.value_mismatches)});
  }
  std::cout << "LSQ: " << sim::lsq_choice_name(cfg.lsq) << ", ";
  if (!replay_path.empty() || !import_path.empty()) {
    std::cout << results.size() << " replayed trace"
              << (results.size() == 1 ? "" : "s") << "\n";
  } else {
    std::cout << cfg.instructions << " instructions/program\n";
  }
  t.print(std::cout);
  return ran_sweep ? sim::sweep_exit_code(report) : 0;
}
