// Figure 9 reproduction: L1 data cache dynamic energy, conventional LSQ
// vs SAMIE-LSQ (which turns repeat accesses into way-known accesses).
//
// Paper: 42% saved on average; ammp and swim highest (~58%), sixtrack
// lowest (~21%); savings are consistent across the whole suite.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figure 9 — L1 Dcache dynamic energy");

  const std::uint64_t insts = sim::bench_instructions(250'000);
  std::vector<sim::Job> jobs =
      bench::suite_jobs(sim::LsqChoice::kConventional, insts, "conv");
  const auto sj = bench::suite_jobs(sim::LsqChoice::kSamie, insts, "samie");
  jobs.insert(jobs.end(), sj.begin(), sj.end());
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"program", "conv (uJ)", "SAMIE (uJ)", "saved", "way-known frac"});
  std::vector<double> savings;
  std::string hi_prog, lo_prog;
  double hi = -1e9, lo = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& conv = results[i].result;
    const auto& samie = results[n + i].result;
    const double saved = percent_saved(samie.dcache_energy_nj, conv.dcache_energy_nj);
    savings.push_back(saved);
    if (saved > hi) { hi = saved; hi_prog = results[i].job.program; }
    if (saved < lo) { lo = saved; lo_prog = results[i].job.program; }
    const double frac =
        static_cast<double>(samie.core.dcache_way_known) /
        static_cast<double>(samie.core.dcache_way_known + samie.core.dcache_full);
    t.add_row({results[i].job.program, Table::num(conv.dcache_energy_nj / 1e3),
               Table::num(samie.dcache_energy_nj / 1e3),
               Table::num(saved, 1) + "%", Table::num(frac, 2)});
  }
  t.add_row({"SPEC mean", "", "", Table::num(arithmetic_mean(savings), 1) + "%",
             ""});
  t.print(std::cout);

  std::cout << "\npaper: mean 42% saved; max ammp/swim ~58%; min sixtrack ~21%\n"
            << "ours: mean " << Table::num(arithmetic_mean(savings), 1)
            << "%; max " << hi_prog << " " << Table::num(hi, 1) << "%; min "
            << lo_prog << " " << Table::num(lo, 1) << "%\n";
  bench::print_footnote(insts);
  return 0;
}
