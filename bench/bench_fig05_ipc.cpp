// Figure 5 reproduction: % IPC loss of SAMIE-LSQ relative to the
// conventional 128-entry LSQ, per program and SPEC mean.
//
// Paper: mean loss 0.6%; ammp/apsi/mgrid lose, facerec/fma3d gain.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figure 5 — % IPC loss of SAMIE vs conventional LSQ");

  const std::uint64_t insts = sim::bench_instructions(250'000);
  std::vector<sim::Job> jobs = bench::suite_jobs(sim::LsqChoice::kConventional,
                                                 insts, "conv");
  const auto samie_jobs = bench::suite_jobs(sim::LsqChoice::kSamie, insts, "samie");
  jobs.insert(jobs.end(), samie_jobs.begin(), samie_jobs.end());
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"program", "conv IPC", "SAMIE IPC", "IPC loss", "~paper loss"});
  std::vector<double> losses;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& conv = results[i].result;
    const auto& samie = results[n + i].result;
    const double loss = -percent_delta(samie.core.ipc, conv.core.ipc);
    losses.push_back(loss);
    const auto& ref = bench::fig5_ipc_loss_approx();
    const auto it = ref.find(results[i].job.program);
    t.add_row({results[i].job.program, Table::num(conv.core.ipc),
               Table::num(samie.core.ipc), Table::pct(loss),
               it != ref.end() ? Table::pct(it->second, 1) : "~0"});
  }
  const double mean_loss = arithmetic_mean(losses);
  t.add_row({"SPEC mean", "", "", Table::pct(mean_loss),
             Table::pct(bench::PaperAggregates{}.ipc_loss_pct, 1)});
  t.print(std::cout);

  std::cout << "\npaper reports a mean IPC loss of 0.6%; measured "
            << Table::pct(mean_loss) << "\n";
  bench::print_footnote(insts);
  return 0;
}
