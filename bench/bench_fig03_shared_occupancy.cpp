// Figure 3 reproduction: average number of entries occupied in an
// *unbounded* SharedLSQ for DistribLSQ configurations 128x1, 64x2 and
// 32x4 (banks x entries/bank), per program.
//
// Paper: 128x1 needs clearly more SharedLSQ than 64x2; 64x2 is only
// slightly above 32x4; ammp-class programs dominate.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figure 3 — average unbounded-SharedLSQ occupancy");

  const std::uint64_t insts = sim::bench_instructions(200'000);
  const struct {
    std::uint32_t banks;
    std::uint32_t entries;
  } configs[] = {{128, 1}, {64, 2}, {32, 4}};

  std::vector<sim::Job> jobs;
  for (const auto& c : configs) {
    sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
    cfg.instructions = insts;
    cfg.samie.banks = c.banks;
    cfg.samie.entries_per_bank = c.entries;
    cfg.samie.unbounded_shared = true;
    auto batch = sim::jobs_for_suite(
        cfg, std::to_string(c.banks) + "x" + std::to_string(c.entries));
    jobs.insert(jobs.end(), batch.begin(), batch.end());
  }
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"program", "128x1", "64x2", "32x4", "max(64x2)"});
  double mean[3] = {0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const double v128 = results[i].result.shared_occupancy_mean;
    const double v64 = results[n + i].result.shared_occupancy_mean;
    const double v32 = results[2 * n + i].result.shared_occupancy_mean;
    mean[0] += v128;
    mean[1] += v64;
    mean[2] += v32;
    t.add_row({results[i].job.program, Table::num(v128), Table::num(v64),
               Table::num(v32),
               std::to_string(results[n + i].result.shared_occupancy_max)});
  }
  t.add_row({"SPEC mean", Table::num(mean[0] / static_cast<double>(n)),
             Table::num(mean[1] / static_cast<double>(n)),
             Table::num(mean[2] / static_cast<double>(n)), ""});
  t.print(std::cout);

  std::cout << "\npaper: 128x1 requires clearly more SharedLSQ entries than\n"
            << "64x2, whose requirements are only a bit above 32x4 — the\n"
            << "basis for choosing the 64x2 DistribLSQ (Section 3.5).\n";
  bench::print_footnote(insts);
  return 0;
}
