// Figures 11 and 12 reproduction: accumulated active LSQ area
// (conventional vs SAMIE) and the SAMIE active-area breakdown.
//
// Paper: the accumulated active areas are very similar, slightly (~5%)
// favourable to SAMIE; the DistribLSQ dominates the breakdown, with the
// SharedLSQ visible only for ammp/apsi/art/facerec/mgrid; low-pressure
// integer programs are SAMIE's worst case.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figures 11/12 — accumulated active LSQ area");

  const std::uint64_t insts = sim::bench_instructions(250'000);
  std::vector<sim::Job> jobs =
      bench::suite_jobs(sim::LsqChoice::kConventional, insts, "conv");
  const auto sj = bench::suite_jobs(sim::LsqChoice::kSamie, insts, "samie");
  jobs.insert(jobs.end(), sj.begin(), sj.end());
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"program", "conv (mm^2*Mcyc)", "SAMIE (mm^2*Mcyc)", "SAMIE/conv",
           "Distrib%", "Shared%", "AddrBuf%"});
  double conv_total = 0, samie_total = 0;
  constexpr double kScale = 1e12;  // um^2*cycles -> mm^2 * Mcycles
  for (std::size_t i = 0; i < n; ++i) {
    const auto& conv = results[i].result;
    const auto& samie = results[n + i].result;
    conv_total += conv.area_total;
    samie_total += samie.area_total;
    const double total = samie.area_total > 0 ? samie.area_total : 1.0;
    t.add_row({results[i].job.program, Table::num(conv.area_total / kScale, 3),
               Table::num(samie.area_total / kScale, 3),
               Table::num(samie.area_total / conv.area_total, 2),
               Table::num(samie.area_distrib / total * 100, 0),
               Table::num(samie.area_shared / total * 100, 0),
               Table::num(samie.area_addrbuf / total * 100, 0)});
  }
  t.add_row({"SPEC total", Table::num(conv_total / kScale, 3),
             Table::num(samie_total / kScale, 3),
             Table::num(samie_total / conv_total, 2), "", "", ""});
  t.print(std::cout);

  std::cout << "\npaper: accumulated active areas nearly equal, ~5% in\n"
            << "SAMIE's favour; ours: SAMIE/conv = "
            << Table::num(samie_total / conv_total, 2) << "\n";
  bench::print_footnote(insts);
  return 0;
}
