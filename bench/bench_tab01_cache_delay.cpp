// Table 1 + Section 3.6 reproduction: cache access times (conventional vs
// physical-line-known) from the CACTI-style surrogate, and the LSQ
// structure delays.
#include <iostream>

#include "bench/bench_common.h"
#include "src/energy/cache_model.h"
#include "src/energy/lsq_model.h"

int main() {
  using namespace samie;
  using namespace samie::energy;
  bench::print_header("Table 1 — cache access times (ns), 0.10um, 32B lines");

  const Technology tech = tech_100nm();
  const struct {
    std::uint64_t kb;
    std::uint32_t assoc, ports;
    double paper_conv, paper_known;
  } rows[] = {
      {8, 2, 2, 0.865, 0.700},  {8, 2, 4, 1.014, 0.875},
      {8, 4, 2, 1.008, 0.878},  {8, 4, 4, 1.307, 1.266},
      {32, 2, 2, 1.195, 1.092}, {32, 2, 4, 1.551, 1.490},
      {32, 4, 2, 1.194, 1.165}, {32, 4, 4, 1.693, 1.693},
  };

  Table t({"size", "assoc", "ports", "conv (paper)", "conv (ours)",
           "known (paper)", "known (ours)", "improv (paper)", "improv (ours)"});
  for (const auto& r : rows) {
    const CacheModel m(tech, CacheGeometry{r.kb * 1024, r.assoc, 32, r.ports, 32});
    t.add_row({std::to_string(r.kb) + "KB", std::to_string(r.assoc) + "w",
               std::to_string(r.ports), Table::num(r.paper_conv, 3),
               Table::num(m.conventional_delay_ns(), 3),
               Table::num(r.paper_known, 3),
               Table::num(m.known_line_delay_ns(), 3),
               Table::num((r.paper_conv - r.paper_known) / r.paper_conv * 100, 1) + "%",
               Table::num(m.delay_improvement() * 100, 1) + "%"});
  }
  t.print(std::cout);

  std::cout << "\n--- Section 3.6: LSQ structure delays (ns) ---\n";
  const LsqEnergyConstants d = derived_constants(tech);
  const LsqEnergyConstants p = paper_constants();
  Table t2({"structure", "paper", "ours"});
  t2.add_row({"conventional LSQ (128 entries)",
              Table::num(p.delays.conventional_128, 3),
              Table::num(d.delays.conventional_128, 3)});
  t2.add_row({"conventional LSQ (16 entries)",
              Table::num(p.delays.conventional_16, 3),
              Table::num(d.delays.conventional_16, 3)});
  t2.add_row({"DistribLSQ bank compare", Table::num(p.delays.distrib_bank, 3),
              Table::num(d.delays.distrib_bank, 3)});
  t2.add_row({"DistribLSQ bus", Table::num(p.delays.distrib_bus, 3),
              Table::num(d.delays.distrib_bus, 3)});
  t2.add_row({"DistribLSQ total", Table::num(p.delays.distrib_total, 3),
              Table::num(d.delays.distrib_total, 3)});
  t2.add_row({"SharedLSQ", Table::num(p.delays.shared, 3),
              Table::num(d.delays.shared, 3)});
  t2.add_row({"AddrBuffer", Table::num(p.delays.addr_buffer, 3),
              Table::num(d.delays.addr_buffer, 3)});
  t2.print(std::cout);
  std::cout << "\npaper: the conventional 128-entry LSQ is 23% slower than\n"
            << "SAMIE-LSQ; ours: "
            << Table::num((d.delays.conventional_128 / d.delays.distrib_total - 1) *
                              100,
                          1)
            << "% slower.\n";
  return 0;
}
