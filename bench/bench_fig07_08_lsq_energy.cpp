// Figures 7 and 8 reproduction: dynamic LSQ energy (conventional vs
// SAMIE) and the SAMIE breakdown into DistribLSQ / SharedLSQ / AddrBuffer
// / bus.
//
// Paper: SAMIE saves 82% on average; ammp is the only program where the
// two organizations come close; conflict-heavy programs show large
// SharedLSQ/AddrBuffer shares in the breakdown.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figures 7/8 — LSQ dynamic energy and SAMIE breakdown");

  const std::uint64_t insts = sim::bench_instructions(250'000);
  std::vector<sim::Job> jobs =
      bench::suite_jobs(sim::LsqChoice::kConventional, insts, "conv");
  const auto sj = bench::suite_jobs(sim::LsqChoice::kSamie, insts, "samie");
  jobs.insert(jobs.end(), sj.begin(), sj.end());
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"program", "conv (uJ)", "SAMIE (uJ)", "saved", "Distrib%",
           "Shared%", "AddrBuf%", "Bus%"});
  std::vector<double> savings;
  double conv_total = 0, samie_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& conv = results[i].result;
    const auto& samie = results[n + i].result;
    conv_total += conv.lsq_energy_nj;
    samie_total += samie.lsq_energy_nj;
    savings.push_back(percent_saved(samie.lsq_energy_nj, conv.lsq_energy_nj));
    const double total = samie.lsq_energy_nj > 0 ? samie.lsq_energy_nj : 1.0;
    t.add_row({results[i].job.program, Table::num(conv.lsq_energy_nj / 1e3),
               Table::num(samie.lsq_energy_nj / 1e3),
               Table::num(savings.back(), 1) + "%",
               Table::num(samie.lsq_distrib_nj / total * 100, 0),
               Table::num(samie.lsq_shared_nj / total * 100, 0),
               Table::num(samie.lsq_addrbuf_nj / total * 100, 0),
               Table::num(samie.lsq_bus_nj / total * 100, 0)});
  }
  const double mean_saving = percent_saved(samie_total, conv_total);
  t.add_row({"SPEC total", Table::num(conv_total / 1e3),
             Table::num(samie_total / 1e3), Table::num(mean_saving, 1) + "%",
             "", "", "", ""});
  t.print(std::cout);

  std::cout << "\npaper: 82% LSQ energy saved on average; measured "
            << Table::num(mean_saving, 1) << "%\n"
            << "(per-program mean: "
            << Table::num(arithmetic_mean(savings), 1) << "%)\n";
  bench::print_footnote(insts);
  return 0;
}
