// Figure 6 reproduction: deadlock-avoidance pipeline flushes per million
// cycles for SAMIE-LSQ. Paper: ammp dominates (~280/Mcycle); almost every
// other program sits at zero.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figure 6 — deadlock-avoidance flushes per Mcycle");

  const std::uint64_t insts = sim::bench_instructions(250'000);
  const auto results =
      sim::run_jobs(bench::suite_jobs(sim::LsqChoice::kSamie, insts, "samie"));

  Table t({"program", "deadlocks/Mcycle", "~paper", "AddrBuffer busy %"});
  std::string worst;
  double worst_rate = -1.0;
  for (const auto& r : results) {
    const double rate = r.result.deadlocks_per_mcycle();
    if (rate > worst_rate) {
      worst_rate = rate;
      worst = r.job.program;
    }
    const auto& ref = bench::fig6_deadlocks_approx();
    const auto it = ref.find(r.job.program);
    t.add_row({r.job.program, Table::num(rate, 1),
               it != ref.end() ? Table::num(it->second, 0) : "~0",
               Table::num(r.result.buffer_nonempty_frac * 100.0, 1)});
  }
  t.print(std::cout);
  std::cout << "\nworst program: " << worst << " (" << Table::num(worst_rate, 1)
            << "/Mcycle); paper's worst is ammp (~280/Mcycle)\n";
  bench::print_footnote(insts);
  return 0;
}
