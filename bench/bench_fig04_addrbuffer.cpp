// Figure 4 reproduction: number of programs whose AddrBuffer stays unused
// during >= 99% of their execution, as a function of SharedLSQ entries.
//
// Paper: 4 entries satisfy 16 of 26 programs, 8 entries 21, 12 entries 22
// — the basis for the 8-entry SharedLSQ choice.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header(
      "Figure 4 — programs with AddrBuffer idle >= 99% of cycles");

  const std::uint64_t insts = sim::bench_instructions(150'000);
  const std::uint32_t sizes[] = {0, 4, 8, 12, 16, 20, 24, 28, 32};

  std::vector<sim::Job> jobs;
  for (const std::uint32_t s : sizes) {
    sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
    cfg.instructions = insts;
    cfg.samie.shared_entries = s;
    auto batch = sim::jobs_for_suite(cfg, std::to_string(s));
    jobs.insert(jobs.end(), batch.begin(), batch.end());
  }
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"SharedLSQ entries", "programs satisfied (ours)", "paper"});
  const std::map<std::uint32_t, int> paper = {{4, 16}, {8, 21}, {12, 22}};
  std::size_t idx = 0;
  for (const std::uint32_t s : sizes) {
    int satisfied = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (results[idx + i].result.buffer_nonempty_frac <= 0.01) ++satisfied;
    }
    idx += n;
    const auto it = paper.find(s);
    t.add_row({std::to_string(s), std::to_string(satisfied),
               it != paper.end() ? std::to_string(it->second) : ""});
  }
  t.print(std::cout);
  std::cout << "\npaper: an 8-entry SharedLSQ is the sweet spot (21 of 26\n"
            << "programs satisfied; 12 entries only adds one more program).\n";
  bench::print_footnote(insts);
  return 0;
}
