// google-benchmark microbenchmarks of the simulator's hot structures:
// LSQ placement/search throughput (conventional vs ARB vs SAMIE), cache
// and TLB access paths, branch prediction, trace generation, and
// end-to-end simulated instructions per wall-clock second.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/branch/predictor.h"
#include "src/common/rng.h"
#include "src/core/core.h"
#include "src/mem/hierarchy.h"
#include "src/lsq/arb_lsq.h"
#include "src/lsq/conventional_lsq.h"
#include "src/lsq/samie_lsq.h"
#include "src/mem/cache.h"
#include "src/mem/tlb.h"
#include "src/sim/simulator.h"
#include "src/trace/spec2000.h"
#include "src/trace/workload.h"

namespace {

using namespace samie;

/// Drives an LSQ through place -> commit cycles with a strided stream.
template <typename MakeQueue>
void lsq_churn(benchmark::State& state, MakeQueue make) {
  auto q = make();
  Xoshiro256 rng(7);
  InstSeq seq = 0;
  std::vector<InstSeq> live;
  for (auto _ : state) {
    if (live.size() >= 48 || (!live.empty() && !q->can_dispatch(true))) {
      q->on_commit(live.front());
      live.erase(live.begin());
      continue;
    }
    const Addr addr = 0x10000 + (rng.below(512)) * 8;
    q->on_dispatch(seq, true);
    const lsq::Placement p = q->on_address_ready(
        lsq::MemOpDesc{seq, addr, 8, true, false});
    if (p.status == lsq::Placement::Status::kPlaced) {
      live.push_back(seq);
    } else {
      // Buffered: drain immediately to keep the structure moving.
      std::vector<InstSeq> placed;
      q->drain(placed);
      for (InstSeq s : placed) live.push_back(s);
      if (!q->is_placed(seq)) {
        // Give up on this op: free the oldest and retry next iteration.
        if (!live.empty()) {
          q->on_commit(live.front());
          live.erase(live.begin());
        }
        std::vector<InstSeq> placed2;
        q->drain(placed2);
        for (InstSeq s : placed2) live.push_back(s);
      }
    }
    ++seq;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(seq));
}

void BM_ConventionalLsqChurn(benchmark::State& state) {
  lsq_churn(state, [] {
    return std::make_unique<lsq::ConventionalLsq>(lsq::ConventionalLsqConfig{},
                                                  nullptr);
  });
}
BENCHMARK(BM_ConventionalLsqChurn);

void BM_ArbLsqChurn(benchmark::State& state) {
  lsq_churn(state, [] {
    return std::make_unique<lsq::ArbLsq>(
        lsq::ArbConfig{.banks = 8, .rows_per_bank = 16, .max_inflight = 128,
                       .line_bytes = 32});
  });
}
BENCHMARK(BM_ArbLsqChurn);

void BM_SamieLsqChurn(benchmark::State& state) {
  lsq_churn(state, [] {
    return std::make_unique<lsq::SamieLsq>(lsq::SamieConfig{}, nullptr);
  });
}
BENCHMARK(BM_SamieLsqChurn);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache c(mem::CacheConfig{.name = "L1D", .size_bytes = 8192,
                                .associativity = 4, .line_bytes = 32,
                                .hit_latency = 2});
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(0x1000 + rng.below(4096) * 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_TlbAccess(benchmark::State& state) {
  mem::Tlb t(mem::TlbConfig{});
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.access(rng.below(200) * 4096));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TlbAccess);

void BM_HybridPredictor(benchmark::State& state) {
  branch::HybridPredictor p;
  Xoshiro256 rng(5);
  Addr pc = 0x400000;
  for (auto _ : state) {
    pc += 4 + (rng.below(4)) * 4;
    benchmark::DoNotOptimize(p.predict_and_update(pc & 0xFFFF, rng.chance(0.6)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HybridPredictor);

void BM_TraceGeneration(benchmark::State& state) {
  const trace::WorkloadProfile profile = trace::spec2000_profile("swim");
  for (auto _ : state) {
    trace::WorkloadGenerator gen(profile, 11);
    benchmark::DoNotOptimize(gen.generate(10'000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_TraceGeneration);

// --- quiescence check: incremental ledger word vs from-scratch predicate ---
// A mid-flight Core (run() stopped at half the trace, ROB/queues/LSQ
// populated) answers "can any stage act?" two ways: the legacy
// `quiescent()` predicate re-reads every stage's state, while the wake
// ledger — maintained incrementally by the stages — is one word test.
// The pair isolates the engine's per-stepped-cycle check cost.
struct QuiescenceRig {
  trace::Trace trace;
  lsq::SamieLsq lsq{lsq::SamieConfig{}, nullptr};
  mem::MemoryHierarchy memory{mem::HierarchyConfig{}};
  branch::HybridPredictor pred;
  branch::Btb btb;
  core::Core<lsq::SamieLsq> core;

  QuiescenceRig()
      : trace(trace::WorkloadGenerator(trace::spec2000_profile("gcc"), 9)
                  .generate(40'000)),
        core(core::CoreConfig{}, trace, lsq, memory, pred, btb, nullptr,
             nullptr, nullptr) {
    (void)core.run(20'000);  // stop mid-flight: state stays populated
  }
};

void BM_QuiescencePredicateFromScratch(benchmark::State& state) {
  QuiescenceRig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.core.quiescent());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuiescencePredicateFromScratch);

void BM_QuiescenceLedgerWordTest(benchmark::State& state) {
  QuiescenceRig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.core.wake_ledger() == 0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuiescenceLedgerWordTest);

// --- ROB status scans: AoS record walk vs packed SoA status words ----------
// The commit/issue/writeback questions ("is slot completed? placed?
// waiting?") touch one flag per slot, and the stages reach slots by
// seq — a scattered pattern (wheel pops, wake lists), not a linear
// sweep the prefetcher could hide. Both variants visit the same random
// slot permutation. The AoS record models the former ~104-byte InFlight
// (the flag sits mid-struct: every probe drags a full cache line of
// lists and cold state); the SoA variant is the engine's packed 4-byte
// SlotStatus array. Arg(256) is the paper ROB (AoS: 28 KB touched —
// most of an L1 — vs 1 KB); Arg(4096) a scaled window (AoS probes miss
// to L2, the status words still fit in L1).
struct FatAosSlot {  // mirrors the retired InFlight's footprint
  std::uint64_t seq;
  std::uint32_t gen;
  const void* op;
  std::uint8_t wait_agen, wait_data;
  bool in_iq, agen_issued, agen_done, placed, data_ready;
  bool executing, completed, mispredicted;
  std::uint64_t load_value;
  std::uint64_t prev_rename;
  std::array<std::uint64_t, 6> list_headers;  // 3 former vectors
};

void BM_RobStatusScanAoS(benchmark::State& state) {
  const std::size_t slots = static_cast<std::size_t>(state.range(0));
  std::vector<FatAosSlot> rob(slots);
  Xoshiro256 rng(17);
  for (auto& s : rob) s.completed = rng.chance(0.5);
  std::vector<std::uint32_t> order(slots);
  for (std::size_t i = 0; i < slots; ++i) order[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = slots; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (auto _ : state) {
    std::uint32_t n = 0;
    for (const std::uint32_t i : order) n += rob[i].completed ? 1 : 0;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_RobStatusScanAoS)->Arg(256)->Arg(4096);

void BM_RobStatusScanSoA(benchmark::State& state) {
  const std::size_t slots = static_cast<std::size_t>(state.range(0));
  std::vector<core::SlotStatus> rob(slots);
  Xoshiro256 rng(17);
  for (auto& s : rob) {
    if (rng.chance(0.5)) s.set(core::SlotStatus::kCompleted);
  }
  std::vector<std::uint32_t> order(slots);
  for (std::size_t i = 0; i < slots; ++i) order[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = slots; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (auto _ : state) {
    std::uint32_t n = 0;
    for (const std::uint32_t i : order) n += rob[i].completed() ? 1 : 0;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_RobStatusScanSoA)->Arg(256)->Arg(4096);

void BM_EndToEndSimulation(benchmark::State& state) {
  sim::SimConfig cfg = sim::paper_config(
      state.range(0) == 0 ? sim::LsqChoice::kConventional
                          : sim::LsqChoice::kSamie);
  cfg.instructions = 20'000;
  trace::WorkloadGenerator gen(trace::spec2000_profile("gzip"), 1);
  const trace::Trace t = gen.generate(cfg.instructions);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(cfg, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.instructions));
  state.SetLabel(state.range(0) == 0 ? "conventional" : "samie");
}
BENCHMARK(BM_EndToEndSimulation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
