// Ablation benches for the design choices Section 3.5 discusses and the
// future-work item of Section 3.6:
//   (a) slots per entry (4 / 8 / 16) — energy vs capacity trade-off;
//   (b) SharedLSQ size (4 / 8 / 16) — conflict absorption;
//   (c) exploiting the lower way-known access latency (paper leaves this
//       unexploited; we measure what it would buy).
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  const std::uint64_t insts = sim::bench_instructions(120'000);
  const std::vector<std::string> programs = {"ammp",  "apsi", "swim",
                                             "facerec", "gcc", "sixtrack"};

  // ---------------- (a) slots per entry -----------------------------------
  bench::print_header("Ablation A — slots per entry (paper fixes 8)");
  {
    std::vector<sim::Job> jobs;
    for (const std::uint32_t slots : {4U, 8U, 16U}) {
      for (const auto& prog : programs) {
        sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
        cfg.instructions = insts;
        cfg.samie.slots_per_entry = slots;
        jobs.push_back(sim::Job{prog, cfg, std::to_string(slots)});
      }
    }
    const auto results = sim::run_jobs(jobs);
    Table t({"program", "slots", "IPC", "LSQ uJ", "way-known frac",
             "buf busy%"});
    for (const auto& r : results) {
      const double frac =
          static_cast<double>(r.result.core.dcache_way_known) /
          static_cast<double>(
              std::max<std::uint64_t>(1, r.result.core.dcache_way_known +
                                             r.result.core.dcache_full));
      t.add_row({r.job.program, r.job.tag, Table::num(r.result.core.ipc),
                 Table::num(r.result.lsq_energy_nj / 1e3),
                 Table::num(frac, 2),
                 Table::num(r.result.buffer_nonempty_frac * 100, 1)});
    }
    t.print(std::cout);
    std::cout << "paper's reasoning: more slots help reuse but cost leakage\n"
              << "and delay; fewer slots push line-concentrated programs\n"
              << "into more entries (Section 3.5).\n";
  }

  // ---------------- (b) SharedLSQ size -------------------------------------
  bench::print_header("Ablation B — SharedLSQ entries (paper fixes 8)");
  {
    std::vector<sim::Job> jobs;
    for (const std::uint32_t shared : {4U, 8U, 16U}) {
      for (const auto& prog : programs) {
        sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
        cfg.instructions = insts;
        cfg.samie.shared_entries = shared;
        jobs.push_back(sim::Job{prog, cfg, std::to_string(shared)});
      }
    }
    const auto results = sim::run_jobs(jobs);
    Table t({"program", "shared", "IPC", "deadlocks/Mcyc", "buf busy%"});
    for (const auto& r : results) {
      t.add_row({r.job.program, r.job.tag, Table::num(r.result.core.ipc),
                 Table::num(r.result.deadlocks_per_mcycle(), 1),
                 Table::num(r.result.buffer_nonempty_frac * 100, 1)});
    }
    t.print(std::cout);
  }

  // ---------------- (c) way-known latency (future work) --------------------
  bench::print_header(
      "Ablation C — exploiting the lower way-known latency (paper future work)");
  {
    std::vector<sim::Job> jobs;
    for (const bool exploit : {false, true}) {
      for (const auto& prog : programs) {
        sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kSamie);
        cfg.instructions = insts;
        cfg.core.exploit_known_line_latency = exploit;
        jobs.push_back(sim::Job{prog, cfg, exploit ? "fast" : "base"});
      }
    }
    const auto results = sim::run_jobs(jobs);
    Table t({"program", "IPC (base)", "IPC (fast way-known)", "gain"});
    for (std::size_t i = 0; i < programs.size(); ++i) {
      const double base = results[i].result.core.ipc;
      const double fast = results[programs.size() + i].result.core.ipc;
      t.add_row({programs[i], Table::num(base), Table::num(fast),
                 Table::pct(percent_delta(fast, base))});
    }
    t.print(std::cout);
    std::cout << "paper (Section 3.6): Table 1 shows way-known accesses are\n"
              << "up to 19% faster but the evaluation leaves that unused;\n"
              << "this ablation turns it on (1 cycle saved per such access).\n";
  }
  bench::print_footnote(insts);
  return 0;
}
