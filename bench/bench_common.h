// Shared infrastructure for the reproduction benches: the paper's stated
// reference numbers, suite helpers, and consistent headers.
//
// Reference values come from two sources:
//   * exact numbers stated in the paper's text/tables (marked "paper");
//   * per-program values digitized approximately from the figures (marked
//     "~paper" in output) — bar charts only support coarse reading, so
//     these carry generous uncertainty and serve shape comparison only.
#pragma once

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/trace/spec2000.h"

namespace samie::bench {

/// Paper-stated aggregate results (Abstract / Section 4).
struct PaperAggregates {
  double lsq_energy_saving_pct = 82.0;
  double dcache_energy_saving_pct = 42.0;
  double dtlb_energy_saving_pct = 73.0;
  double ipc_loss_pct = 0.6;
  double dcache_saving_max_pct = 58.0;  // ammp, swim
  double dcache_saving_min_pct = 21.0;  // sixtrack
  double dtlb_saving_max_pct = 84.0;    // ammp
  double dtlb_saving_min_pct = 55.0;    // mcf
  double area_saving_pct = 5.0;         // accumulated active area
};

/// Coarse per-program IPC-loss readings from Figure 5 (percent; positive =
/// SAMIE slower). Programs absent from the map read ~0 in the figure.
inline const std::map<std::string, double>& fig5_ipc_loss_approx() {
  static const std::map<std::string, double> m = {
      {"ammp", 7.0},   {"apsi", 2.5},    {"mgrid", 1.5},
      {"facerec", -2.0}, {"fma3d", -2.0},
  };
  return m;
}

/// Coarse per-program deadlock readings from Figure 6 (per million cycles).
inline const std::map<std::string, double>& fig6_deadlocks_approx() {
  static const std::map<std::string, double> m = {
      {"ammp", 280.0}, {"apsi", 15.0}, {"mgrid", 10.0},
  };
  return m;
}

inline void print_header(const std::string& what) {
  std::cout << "\n=== SAMIE-LSQ reproduction: " << what << " ===\n"
            << "(paper: Abella & Gonzalez, IPDPS 2006; see EXPERIMENTS.md)\n\n";
}

inline void print_footnote(std::uint64_t insts) {
  std::cout << "\n[" << insts << " instructions/program"
            << "; scale with SAMIE_BENCH_INSTS; threads with"
            << " SAMIE_BENCH_THREADS]\n";
}

/// Builds (program x LsqChoice) jobs over the whole suite.
inline std::vector<sim::Job> suite_jobs(sim::LsqChoice choice,
                                        std::uint64_t insts,
                                        const std::string& tag) {
  sim::SimConfig cfg = sim::paper_config(choice);
  cfg.instructions = insts;
  return sim::jobs_for_suite(cfg, tag);
}

}  // namespace samie::bench
