// Figure 10 reproduction: data-TLB dynamic energy, conventional LSQ vs
// SAMIE-LSQ (cached translations skip the DTLB entirely).
//
// Paper: 73% saved on average; max ammp (~84%), min mcf (~55%). The DTLB
// fraction saved exceeds the Dcache fraction because translations survive
// cache replacements.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figure 10 — data TLB dynamic energy");

  const std::uint64_t insts = sim::bench_instructions(250'000);
  std::vector<sim::Job> jobs =
      bench::suite_jobs(sim::LsqChoice::kConventional, insts, "conv");
  const auto sj = bench::suite_jobs(sim::LsqChoice::kSamie, insts, "samie");
  jobs.insert(jobs.end(), sj.begin(), sj.end());
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  Table t({"program", "conv (uJ)", "SAMIE (uJ)", "saved", "cached frac"});
  std::vector<double> savings;
  std::string hi_prog, lo_prog;
  double hi = -1e9, lo = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& conv = results[i].result;
    const auto& samie = results[n + i].result;
    const double saved = percent_saved(samie.dtlb_energy_nj, conv.dtlb_energy_nj);
    savings.push_back(saved);
    if (saved > hi) { hi = saved; hi_prog = results[i].job.program; }
    if (saved < lo) { lo = saved; lo_prog = results[i].job.program; }
    const double frac = static_cast<double>(samie.core.dtlb_cached) /
                        static_cast<double>(samie.core.dtlb_cached +
                                            samie.core.dtlb_accesses);
    t.add_row({results[i].job.program, Table::num(conv.dtlb_energy_nj / 1e3),
               Table::num(samie.dtlb_energy_nj / 1e3),
               Table::num(saved, 1) + "%", Table::num(frac, 2)});
  }
  t.add_row({"SPEC mean", "", "", Table::num(arithmetic_mean(savings), 1) + "%",
             ""});
  t.print(std::cout);

  std::cout << "\npaper: mean 73% saved; max ammp ~84%; min mcf ~55%\n"
            << "ours: mean " << Table::num(arithmetic_mean(savings), 1)
            << "%; max " << hi_prog << " " << Table::num(hi, 1) << "%; min "
            << lo_prog << " " << Table::num(lo, 1) << "%\n";
  bench::print_footnote(insts);
  return 0;
}
