// Figure 1 reproduction: IPC of the ARB (Franklin & Sohi) relative to an
// unbounded LSQ, for bank x address configurations 1x128 ... 128x1, plus
// the series with half the addresses / half the in-flight cap.
//
// Paper: performance degrades as banking grows; 64x2 loses ~28%; halving
// the fully-associative configuration costs ~16%.
#include "bench/bench_common.h"

int main() {
  using namespace samie;
  bench::print_header("Figure 1 — ARB IPC relative to an unbounded LSQ");

  const std::uint64_t insts = sim::bench_instructions(150'000);
  const struct {
    std::uint32_t banks;
    std::uint32_t rows;
  } grid[] = {{1, 128}, {2, 64}, {4, 32}, {8, 16},
              {16, 8},  {32, 4}, {64, 2}, {128, 1}};

  std::vector<sim::Job> jobs =
      bench::suite_jobs(sim::LsqChoice::kUnbounded, insts, "unbounded");
  for (const auto& g : grid) {
    for (const bool half : {false, true}) {
      sim::SimConfig cfg = sim::paper_config(sim::LsqChoice::kArb);
      cfg.instructions = insts;
      cfg.arb.banks = g.banks;
      cfg.arb.rows_per_bank = half ? std::max(1U, g.rows / 2) : g.rows;
      cfg.arb.max_inflight = half ? 64 : 128;
      auto batch = sim::jobs_for_suite(
          cfg, std::to_string(g.banks) + "x" + std::to_string(g.rows) +
                   (half ? "/half" : ""));
      jobs.insert(jobs.end(), batch.begin(), batch.end());
    }
  }
  const auto results = sim::run_jobs(jobs);
  const std::size_t n = trace::spec2000_names().size();

  // Geometric-mean IPC relative to the unbounded baseline, per config.
  std::vector<double> base_ipc(n);
  for (std::size_t i = 0; i < n; ++i) base_ipc[i] = results[i].result.core.ipc;

  Table t({"banks x addrs", "IPC vs unbounded", "half-addresses series"});
  std::size_t idx = n;
  for (const auto& g : grid) {
    double rel[2] = {0, 0};
    for (int half = 0; half < 2; ++half) {
      std::vector<double> ratios;
      for (std::size_t i = 0; i < n; ++i) {
        ratios.push_back(results[idx + i].result.core.ipc / base_ipc[i]);
      }
      rel[half] = geometric_mean(ratios) * 100.0;
      idx += n;
    }
    t.add_row({std::to_string(g.banks) + "x" + std::to_string(g.rows),
               Table::num(rel[0], 1) + "%", Table::num(rel[1], 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\npaper: monotone degradation with banking; 64x2 loses ~28%;\n"
            << "the halved fully-associative point (1 bank) loses ~16%.\n";
  bench::print_footnote(insts);
  return 0;
}
