// bench_hotpath: simulator-throughput benchmark for the per-memory-op hot
// path (the zero-allocation / static-dispatch refactor's scoreboard).
//
// Runs the SPEC2000 suite under the conventional, ARB and SAMIE LSQs on
// one thread and reports simulated cycles per wall-clock second. Two
// checked-in references frame the measurement:
//   * bench/baseline_hotpath.json — the pre-refactor tree (perf_report
//     output); the SAMIE speedup against it is printed (PR 1's
//     acceptance bar was >= 1.5x);
//   * bench/trajectory_hotpath.json — the PR-indexed history of
//     sim_cycles_per_second per LSQ, re-measured back-to-back on one
//     host at each perf PR, printed as a table so the full trajectory is
//     visible, not just the endpoint.
//
// Environment:
//   SAMIE_BENCH_INSTS      instructions/program (default 200000)
//   SAMIE_BENCH_NO_SKIP    when set (non-empty), measure the always-step
//                          loop (--no-skip): statistics identical, the
//                          skip % column is suppressed
//   SAMIE_BASELINE_JSON    baseline path (default bench/baseline_hotpath.json,
//                          also tried relative to the source tree)
//   SAMIE_TRAJECTORY_JSON  trajectory path (default
//                          bench/trajectory_hotpath.json, same fallbacks)
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/sim/perf_harness.h"

namespace {

using namespace samie;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string load_baseline() {
  if (const char* env = std::getenv("SAMIE_BASELINE_JSON"); env != nullptr) {
    return read_file(env);
  }
  for (const char* p : {"bench/baseline_hotpath.json",
                        "../bench/baseline_hotpath.json",
                        "../../bench/baseline_hotpath.json"}) {
    if (std::string t = read_file(p); !t.empty()) return t;
  }
  return {};
}

std::string load_trajectory() {
  if (const char* env = std::getenv("SAMIE_TRAJECTORY_JSON"); env != nullptr) {
    return read_file(env);
  }
  for (const char* p : {"bench/trajectory_hotpath.json",
                        "../bench/trajectory_hotpath.json",
                        "../../bench/trajectory_hotpath.json"}) {
    if (std::string t = read_file(p); !t.empty()) return t;
  }
  return {};
}

}  // namespace

int main() {
  bench::print_header("hot-path throughput (simulated cycles / second)");

  sim::HotpathOptions opt;
  opt.instructions = sim::bench_instructions(200'000);
  opt.repeats = 3;
  // SAMIE_BENCH_NO_SKIP measures the always-step loop; the skip %
  // column is suppressed rather than printing a column of zeros.
  const char* no_skip_env = std::getenv("SAMIE_BENCH_NO_SKIP");
  opt.always_step = no_skip_env != nullptr && *no_skip_env != '\0';
  const sim::HotpathReport report = sim::run_hotpath_measurement(opt);

  const std::string baseline = load_baseline();

  // RSS is the process high-water mark, i.e. "peak so far" in run order
  // (conventional -> arb -> samie), not a per-LSQ footprint. "skip %" is
  // the share of simulated cycles the event-driven engine fast-forwarded
  // over instead of walking the six stages.
  std::vector<std::string> headers = {"lsq", "sim cycles", "wall s",
                                      "Mcycles/s"};
  if (!report.no_skip) headers.push_back("skip %");
  headers.insert(headers.end(), {"RSS-so-far MB", "vs baseline"});
  Table t(headers);
  for (const auto& lr : report.lsqs) {
    const std::string tag = sim::lsq_choice_name(lr.lsq);
    const double base =
        baseline.empty()
            ? 0.0
            : sim::hotpath_cycles_per_second_from_json(baseline, tag);
    std::vector<std::string> row = {tag, std::to_string(lr.total_sim_cycles),
                                    Table::num(lr.total_wall_seconds),
                                    Table::num(lr.sim_cycles_per_second / 1e6)};
    if (!report.no_skip) {
      const double skip = 100.0 * sim::skip_fraction(lr.total_skipped_cycles,
                                                     lr.total_sim_cycles);
      row.push_back(Table::num(skip, 1));
    }
    row.push_back(Table::num(static_cast<double>(lr.peak_rss_kb) / 1024.0));
    row.push_back(base > 0.0
                      ? Table::num(lr.sim_cycles_per_second / base, 2) + "x"
                      : std::string("(no baseline)"));
    t.add_row(row);
  }
  t.print(std::cout);
  if (report.no_skip) {
    std::cout << "(always-step run: quiescent-cycle skip disabled)\n";
  }

  for (const auto& lr : report.lsqs) {
    if (lr.lsq != sim::LsqChoice::kSamie || baseline.empty()) continue;
    const double base =
        sim::hotpath_cycles_per_second_from_json(baseline, "samie");
    if (base <= 0.0) continue;
    const double speedup = lr.sim_cycles_per_second / base;
    std::cout << "\nSAMIE hot-path speedup vs pre-refactor baseline: "
              << Table::num(speedup, 2) << "x (target >= 1.5x)\n";
  }

  // The PR-indexed history: every perf PR re-measures all entries
  // back-to-back on its host, so the ratios are comparable even though
  // the absolute numbers are machine-dependent.
  const std::vector<sim::TrajectoryEntry> history =
      sim::parse_hotpath_trajectory(load_trajectory());
  if (!history.empty()) {
    std::cout << "\nperf trajectory (Mcycles/s per LSQ, same-host "
                 "back-to-back measurements):\n";
    Table h({"entry", "conventional", "arb", "samie", "samie vs prev"});
    double prev_samie = 0.0;
    for (const auto& e : history) {
      h.add_row({e.label, Table::num(e.conventional / 1e6),
                 Table::num(e.arb / 1e6), Table::num(e.samie / 1e6),
                 prev_samie > 0.0
                     ? Table::num(e.samie / prev_samie, 2) + "x"
                     : std::string("-")});
      prev_samie = e.samie;
    }
    h.print(std::cout);
  }

  bench::print_footnote(opt.instructions);
  return 0;
}
