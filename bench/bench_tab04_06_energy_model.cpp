// Tables 4, 5 and 6 reproduction: per-event LSQ energies and cell areas —
// the paper's published CACTI 3.0 outputs next to this repository's
// analytical surrogate.
#include <iostream>

#include "bench/bench_common.h"
#include "src/energy/cache_model.h"
#include "src/energy/lsq_model.h"

int main() {
  using namespace samie;
  using namespace samie::energy;
  bench::print_header("Tables 4/5/6 — LSQ energies (pJ) and cell areas (um^2)");

  const LsqEnergyConstants p = paper_constants();
  const LsqEnergyConstants d = derived_constants(tech_100nm());

  std::cout << "--- Table 4: conventional 128-entry LSQ ---\n";
  Table t4({"activity", "paper (pJ)", "surrogate (pJ)"});
  t4.add_row({"address comparison (base)", Table::num(p.conv.addr_cmp_base_pj, 1),
              Table::num(d.conv.addr_cmp_base_pj, 1)});
  t4.add_row({"... per address compared", Table::num(p.conv.addr_cmp_per_addr_pj),
              Table::num(d.conv.addr_cmp_per_addr_pj)});
  t4.add_row({"read/write an address", Table::num(p.conv.addr_rw_pj, 1),
              Table::num(d.conv.addr_rw_pj, 1)});
  t4.add_row({"read/write a datum", Table::num(p.conv.datum_rw_pj, 1),
              Table::num(d.conv.datum_rw_pj, 1)});
  t4.print(std::cout);

  std::cout << "\n--- Table 5: SAMIE-LSQ ---\n";
  Table t5({"activity", "paper (pJ)", "surrogate (pJ)"});
  auto row = [&](const char* name, double pv, double dv) {
    t5.add_row({name, Table::num(pv, 3), Table::num(dv, 3)});
  };
  row("Distrib: addr cmp (base)", p.samie.d_addr_cmp_base_pj, d.samie.d_addr_cmp_base_pj);
  row("Distrib: addr cmp per addr", p.samie.d_addr_cmp_per_addr_pj,
      d.samie.d_addr_cmp_per_addr_pj);
  row("Distrib: r/w address", p.samie.d_addr_rw_pj, d.samie.d_addr_rw_pj);
  row("Distrib: age cmp (base)", p.samie.d_age_cmp_base_pj, d.samie.d_age_cmp_base_pj);
  row("Distrib: age cmp per id", p.samie.d_age_cmp_per_id_pj,
      d.samie.d_age_cmp_per_id_pj);
  row("Distrib: r/w age id", p.samie.d_age_rw_pj, d.samie.d_age_rw_pj);
  row("Distrib: r/w datum", p.samie.d_datum_rw_pj, d.samie.d_datum_rw_pj);
  row("Distrib: r/w translation", p.samie.d_translation_rw_pj,
      d.samie.d_translation_rw_pj);
  row("Distrib: r/w line id", p.samie.d_line_id_rw_pj, d.samie.d_line_id_rw_pj);
  row("bus: send an address", p.samie.bus_send_addr_pj, d.samie.bus_send_addr_pj);
  row("Shared: addr cmp (base)", p.samie.s_addr_cmp_base_pj, d.samie.s_addr_cmp_base_pj);
  row("Shared: addr cmp per addr", p.samie.s_addr_cmp_per_addr_pj,
      d.samie.s_addr_cmp_per_addr_pj);
  row("Shared: r/w address", p.samie.s_addr_rw_pj, d.samie.s_addr_rw_pj);
  row("Shared: age cmp (base)", p.samie.s_age_cmp_base_pj, d.samie.s_age_cmp_base_pj);
  row("Shared: age cmp per id", p.samie.s_age_cmp_per_id_pj,
      d.samie.s_age_cmp_per_id_pj);
  row("Shared: r/w datum", p.samie.s_datum_rw_pj, d.samie.s_datum_rw_pj);
  row("Shared: r/w translation", p.samie.s_translation_rw_pj,
      d.samie.s_translation_rw_pj);
  row("Shared: r/w line id", p.samie.s_line_id_rw_pj, d.samie.s_line_id_rw_pj);
  row("AddrBuffer: r/w datum", p.samie.ab_datum_rw_pj, d.samie.ab_datum_rw_pj);
  row("AddrBuffer: r/w age id", p.samie.ab_age_rw_pj, d.samie.ab_age_rw_pj);
  t5.print(std::cout);

  std::cout << "\n--- Table 6: cell areas ---\n";
  Table t6({"component", "paper (um^2)", "surrogate (um^2)"});
  t6.add_row({"conventional address CAM", Table::num(p.areas.conv_addr_cam, 1),
              Table::num(d.areas.conv_addr_cam, 1)});
  t6.add_row({"conventional datum RAM", Table::num(p.areas.conv_datum_ram, 1),
              Table::num(d.areas.conv_datum_ram, 1)});
  t6.add_row({"SAMIE address CAM", Table::num(p.areas.samie_addr_cam, 1),
              Table::num(d.areas.samie_addr_cam, 1)});
  t6.add_row({"SAMIE age-id CAM", Table::num(p.areas.samie_age_cam, 1),
              Table::num(d.areas.samie_age_cam, 1)});
  t6.add_row({"SAMIE datum RAM", Table::num(p.areas.samie_datum_ram, 1),
              Table::num(d.areas.samie_datum_ram, 1)});
  t6.add_row({"AddrBuffer datum RAM", Table::num(p.areas.addrbuf_datum_ram, 1),
              Table::num(d.areas.addrbuf_datum_ram, 1)});
  t6.add_row({"AddrBuffer age RAM", Table::num(p.areas.addrbuf_age_ram, 1),
              Table::num(d.areas.addrbuf_age_ram, 1)});
  t6.print(std::cout);

  std::cout << "\n--- Section 4.2: memory-system access energies ---\n";
  Table tm({"access", "paper (pJ)", "surrogate (pJ)"});
  tm.add_row({"Dcache full access", Table::num(p.mem.dcache_full_access_pj, 0),
              Table::num(d.mem.dcache_full_access_pj, 0)});
  tm.add_row({"Dcache way-known access", Table::num(p.mem.dcache_way_known_pj, 0),
              Table::num(d.mem.dcache_way_known_pj, 0)});
  tm.add_row({"DTLB access", Table::num(p.mem.dtlb_access_pj, 0),
              Table::num(d.mem.dtlb_access_pj, 0)});
  tm.print(std::cout);

  std::cout << "\nThe simulator accounts with the paper's exact constants by\n"
            << "default; the surrogate column documents how closely an\n"
            << "analytical model fitted only to published CACTI outputs can\n"
            << "track them (see DESIGN.md, substitution 2).\n";
  return 0;
}
